"""Execute a :class:`~repro.faults.plan.FaultPlan` against one machine.

The injector is the only piece that touches live simulation state:

* message faults install a :class:`~repro.net.reliable.ReliableLayer`
  over the targeted links and a wire-level fault filter that drops,
  duplicates or delays **frames only** — raw memory-coherence and SSB
  traffic is never faulted (the protocol hardening story is about the
  distributed lock queue, not about building a reliable NoC);
* hardware-pressure and scheduling faults are scheduled as ordinary
  simulator events calling the public fault surfaces grown in
  ``repro.lcu`` / ``repro.cpu.os_sched``.

Determinism: the only randomness is ``random.Random(plan.seed)``
consumed in simulator event order, which the engine makes deterministic
— replaying the same (plan, workload seed, tiebreak seed) triple gives
bit-identical cycle counts and message traces.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.faults.plan import MESSAGE_CLASSES, FaultEvent, FaultPlan
from repro.net.reliable import ReliableLayer

Endpoint = Tuple[str, int]

#: bound on point-eviction victims per event (keeps plans comparable
#: across machine sizes; logged in stats, so never a silent cap)
_EVICTS_PER_EVENT = 4

#: crash victim-policy polling: a crash event whose victim gate refuses
#: the current instant re-checks every ``_CRASH_POLL_INTERVAL`` cycles
#: (a fixed sim-time stride, so replays are bit-identical), up to
#: ``_CRASH_POLL_MAX`` attempts.  If no eligible instant is ever found
#: the crash is *not* injected (``crashes_skipped`` in stats — never a
#: silent cap): forcing an ineligible crash (e.g. on a software-lock
#: holder) would fail the run for a reason the fault model calls
#: unrecoverable by design, not a protocol bug.
_CRASH_POLL_INTERVAL = 263
_CRASH_POLL_MAX = 400

#: zombie victim polling: like the crash poll, but the gate is built in
#: (prefer a core whose LCU currently homes live lock state — a
#: *holder* zombie is the scenario fencing exists for).  If no core
#: ever qualifies (software locks keep no LCU state), the stall lands
#: on the planned core anyway: for them a zombie is just a long stall.
_ZOMBIE_POLL_MAX = 100


@dataclasses.dataclass(frozen=True)
class FaultOutcome:
    """Post-run verdict for one fault class of a plan.

    ``outcome`` is one of:

    * ``"recovered"`` — workload finished, invariants held, protocol
      state quiesced; full service restored.
    * ``"degraded"``  — correct but impaired: the fallback lock engaged,
      or the LRT absorbed an unresolvable remote release.
    * ``"violated"``  — an invariant/oracle violation, a deadlock, or
      protocol traffic that never quiesced.  Never acceptable.
    """

    kind: str
    injected: int
    outcome: str
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class FaultInjector:
    """Arms one plan against one (machine, os) pair.

    Lifecycle: construct → :meth:`arm` (before the workload starts) →
    run the workload → :meth:`drain` → :meth:`classify`.
    """

    def __init__(
        self, machine, os_, plan: FaultPlan, *, fencing: bool = True
    ) -> None:
        self.machine = machine
        self.os = os_
        self.plan = plan
        #: lease-recovery fencing tokens; ``False`` is the sabotage mode
        #: (``repro faults --no-fencing``) that provably reopens the
        #: zombie-writer hole the tokens close
        self.fencing = fencing
        self._rng = random.Random(plan.seed * 0x9E3779B1 + 13)
        self._armed = False
        self.reliable: Optional[ReliableLayer] = None
        self.stats: Dict[str, int] = {}
        self._msg_events: List[FaultEvent] = [
            e for e in plan.events if e.kind in MESSAGE_CLASSES
        ]
        self._partition_events: List[FaultEvent] = [
            e for e in plan.events if e.kind == "partition_links"
        ]
        #: core -> blackhole end cycle for an in-progress zombie window
        self._zombie_until: Dict[int, int] = {}
        # a zombie can land on any core (victim polling decides), so
        # its plan must cover every protocol link with the reliable
        # layer up front — coverage is fixed at arm time
        self._covers_all = any(
            e.kind == "zombie_core" for e in plan.events
        )
        #: cycle of the most recent injected fault (any kind) — the
        #: liveness oracle measures its grant bound from here, so
        #: post-fault recovery time is charged against recovery, not
        #: against the whole faulted run
        self.last_fault_at = 0
        #: crash victim gate: ``fn(core) -> bool``, asked before every
        #: crash injection; None = crash unconditionally.  The check
        #: harness installs a policy-specific closure ("busy" for
        #: LCU-backed locks, "idle" for software ones) — see
        #: :mod:`repro.check.fuzz`.
        self.victim_gate: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # arming

    def arm(self) -> None:
        """Harden the machine, install the wire fault filter + reliable
        layer (if the plan faults messages), schedule every event."""
        assert not self._armed, "injector armed twice"
        self._armed = True
        self.machine.harden(fencing=self.fencing)
        sim = self.machine.sim
        if self.plan.needs_reliable():
            self.reliable = ReliableLayer(sim, self._link_covered)
            self.reliable.attach(self.machine.net)
            self.machine.net.fault_filter = self._fault_filter
            # heartbeats ride the reliable layer and feed the LRT
            # suspicion detector; without frames there is nothing to
            # miss, so they exist only alongside it
            self.machine.start_heartbeats()
        for event in self.plan.events:
            if event.kind in MESSAGE_CLASSES or \
                    event.kind == "partition_links":
                continue  # window-matched inside the filter
            sim.at(max(event.at, sim.now + 1),
                   lambda e=event: self._fire(e))

    def _link_covered(self, src: Endpoint, dst: Endpoint) -> bool:
        if self._covers_all:
            return True
        return any(
            self._link_match(e.links, src, dst)
            for e in self._msg_events + self._partition_events
        )

    def _link_match(self, links: str, src: Endpoint, dst: Endpoint) -> bool:
        if links == "all":
            return True
        if links == "lcu_lrt":
            kinds = {src[0], dst[0]}
            return kinds == {"core", "lrt"} or kinds == {"core"}
        # "inter_chip": Model B hub links
        return self.machine._chip_of(src) != self.machine._chip_of(dst)

    def _partition_match(
        self, e: FaultEvent, src: Endpoint, dst: Endpoint
    ) -> bool:
        if not self._link_match(e.links, src, dst):
            return False
        if e.direction == "both":
            return True
        return self._is_fwd(src, dst) == (e.direction == "fwd")

    def _is_fwd(self, src: Endpoint, dst: Endpoint) -> bool:
        """Canonical link orientation, so ``direction`` names one side
        of an asymmetric cut: core→LRT is "fwd" (so "rev" blackholes
        the grant/ack path while requests keep flowing), lower→higher
        chip is "fwd" on hub links, endpoint tuple order breaks ties."""
        if src[0] == "core" and dst[0] == "lrt":
            return True
        if src[0] == "lrt" and dst[0] == "core":
            return False
        chip_s = self.machine._chip_of(src)
        chip_d = self.machine._chip_of(dst)
        if chip_s != chip_d:
            return chip_s < chip_d
        return src < dst

    # ------------------------------------------------------------------ #
    # wire fault filter (frames only)

    def _fault_filter(
        self, src: Endpoint, dst: Endpoint, payload: Any
    ) -> Iterable[Tuple[int, Any]]:
        if self.reliable is None or not self.reliable.intercepts(payload):
            return [(0, payload)]
        now = self.machine.sim.now
        # blackholes first: a partitioned or zombied link loses every
        # frame outright (the reliable layer's retransmissions are what
        # carry the traffic across the heal)
        for e in self._partition_events:
            if e.at <= now < e.end and self._partition_match(e, src, dst):
                if self._roll(e.prob, "partition_links"):
                    return []
        if self._zombie_until:
            for core, end in self._zombie_until.items():
                if now < end and (
                    src == ("core", core) or dst == ("core", core)
                ):
                    self._count("zombie_blackhole")
                    return []
        copies: List[Tuple[int, Any]] = [(0, payload)]
        for e in self._msg_events:
            if not (e.at <= now < e.end):
                continue
            if not self._link_match(e.links, src, dst):
                continue
            if e.kind == "drop":
                copies = [
                    c for c in copies if not self._roll(e.prob, "drop")
                ]
            elif e.kind == "dup":
                copies = copies + [
                    (delay + self._rng.randrange(1, 64), p)
                    for delay, p in copies
                    if self._roll(e.prob, "dup")
                ]
            elif e.kind == "delay":
                copies = [
                    (delay + self._rng.randrange(1, e.max_delay + 1), p)
                    if self._roll(e.prob, "delay") else (delay, p)
                    for delay, p in copies
                ]
        return copies

    def _roll(self, prob: float, kind: str) -> bool:
        hit = self._rng.random() < prob
        if hit:
            self._count(kind)
        return hit

    # ------------------------------------------------------------------ #
    # point / window events

    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "evict":
            victims = sorted(
                (key, i)
                for i, lcu in enumerate(self.machine.lcus)
                for key in lcu.evictable_entries()
            )
            self._rng.shuffle(victims)
            for (addr, tid), core in victims[:_EVICTS_PER_EVENT]:
                if self.machine.lcus[core].force_evict(addr, tid):
                    self._count("evict")
        elif kind == "flt_storm":
            for lcu in self.machine.lcus:
                while lcu.force_flt_evict():
                    self._count("flt_storm")
        elif kind == "capacity":
            for lcu in self.machine.lcus:
                lcu.set_forced_capacity(event.limit)
            self._count("capacity")
            self.machine.sim.at(
                max(event.end, self.machine.sim.now + 1),
                self._lift_capacity,
            )
        elif kind == "preempt":
            self.os.force_preempt_all(migrate=event.migrate)
            self._count("preempt")
        elif kind == "stall":
            self.os.stall_core(
                event.core % self.machine.config.cores, event.duration
            )
            self._count("stall")
        elif kind == "zombie_core":
            self._try_zombie(event, attempts=0)
        elif kind == "slow_core":
            core = event.core % self.machine.config.cores
            self.os.set_core_slowdown(core, event.factor)
            self._count("slow_core")
            if event.duration:
                self.machine.sim.at(
                    max(event.end, self.machine.sim.now + 1),
                    lambda: self.os.set_core_slowdown(core, 1.0),
                )
        elif kind in ("crash_core", "restart_core"):
            self._try_crash(event, attempts=0)
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise ValueError(f"unschedulable fault kind {kind!r}")

    # ------------------------------------------------------------------ #
    # zombie cores

    def _try_zombie(self, event: FaultEvent, attempts: int) -> None:
        cores = self.machine.config.cores
        preferred = event.core % cores
        victim = None
        for offset in range(cores):
            cand = (preferred + offset) % cores
            if cand in self.os.crashed_cores:
                continue
            if self.machine.lcus[cand].homed_tids():
                victim = cand
                break
        if victim is None:
            if attempts < _ZOMBIE_POLL_MAX:
                self.machine.sim.after(
                    _CRASH_POLL_INTERVAL,
                    lambda: self._try_zombie(event, attempts + 1),
                )
                return
            if preferred in self.os.crashed_cores:
                self.stats["zombies_skipped"] = (
                    self.stats.get("zombies_skipped", 0) + 1
                )
                return
            victim = preferred  # software locks: a plain long stall
        self._begin_zombie(victim, event.duration)

    def _begin_zombie(self, core: int, duration: int) -> None:
        """Freeze the whole core, gray-style: threads stop dispatching
        (``stall_core``) *and* its protocol links blackhole, so probes
        go unanswered and the lease watchdog reclaims a live holder.
        Both effects heal at the same instant — the zombie resumes."""
        end = self.machine.sim.now + max(1, duration)
        self.os.stall_core(core, max(1, duration))
        self._zombie_until[core] = end
        self._count("zombie_core")
        self.machine.sim.at(end, lambda: self._end_zombie(core, end))

    def _end_zombie(self, core: int, end: int) -> None:
        if self._zombie_until.get(core) == end:
            del self._zombie_until[core]
            # the resume is itself an injection instant: the liveness
            # clock restarts here, charging post-resume waits to
            # recovery rather than to the whole stall
            self._count("zombie_heal")

    # ------------------------------------------------------------------ #
    # crash-stop faults

    def _try_crash(self, event: FaultEvent, attempts: int) -> None:
        core = event.core % self.machine.config.cores
        if core in self.os.crashed_cores:
            return  # a second plan event targeting an already-dead core
        if self.victim_gate is not None and not self.victim_gate(core):
            if attempts >= _CRASH_POLL_MAX:
                self.stats["crashes_skipped"] = (
                    self.stats.get("crashes_skipped", 0) + 1
                )
                return
            self.machine.sim.after(
                _CRASH_POLL_INTERVAL,
                lambda: self._try_crash(event, attempts + 1),
            )
            return
        self._execute_crash(event, core)

    def _execute_crash(self, event: FaultEvent, core: int) -> None:
        """The crash choreography, in dependency order: the LCU dies
        first (reporting which tids' lock state died with it), then the
        OS kills the core's running thread plus those tids, then the
        surviving LCUs release whatever the dead threads still held
        elsewhere, and finally the frame layer opens a new era for every
        pair the dead core participated in."""
        homed = self.machine.crash_core(core)
        killed = self.os.crash_core(core, extra_tids=homed)
        self.machine.purge_dead_tids(killed)
        if self.reliable is not None:
            self.reliable.bump_era(("core", core))
        self._count(event.kind)
        if event.kind == "restart_core":
            self.machine.sim.after(
                max(1, event.duration), lambda: self._execute_restart(core)
            )

    def _execute_restart(self, core: int) -> None:
        self.machine.restart_core(core)
        self.os.restart_core(core)
        self._count("restart")

    def _lift_capacity(self) -> None:
        for lcu in self.machine.lcus:
            lcu.set_forced_capacity(None)

    def _count(self, kind: str) -> None:
        self.stats[kind] = self.stats.get(kind, 0) + 1
        self.last_fault_at = self.machine.sim.now

    # ------------------------------------------------------------------ #
    # post-run

    def drain(self, step: int = 50_000, max_steps: int = 20) -> bool:
        """Let retransmissions and reclaim traffic settle after the
        workload; returns True when no frame is left pending."""
        for _ in range(max_steps):
            self.machine.drain(step)
            if self.reliable is None or self.reliable.pending_frames() == 0:
                return True
        return self.reliable is None or self.reliable.pending_frames() == 0

    def degradation_detail(self, algorithm=None) -> str:
        """Why (if at all) the run counts as degraded rather than fully
        recovered."""
        reasons = []
        if algorithm is not None:
            degrades = getattr(algorithm, "stats", {}).get("degrades", 0)
            if degrades:
                detail = f"fallback lock engaged x{degrades}"
                if any(e.kind == "evict" for e in self.plan.events):
                    # Root-caused (see DESIGN.md): a point eviction frees
                    # the victims' entries, but the evicted waiters all
                    # re-request at once and each burned fast-path
                    # attempt counts toward the BRAVO-style degrade
                    # threshold — with the threshold at 3, one eviction
                    # burst is enough.  Inherent to adversarially timed
                    # eviction + a finite threshold, not a protocol bug:
                    # correctness holds, throughput degrades by design.
                    detail += " (inherent under forced eviction)"
                reasons.append(detail)
        unresolved = sum(
            lrt.stats.get("unresolved_remote_releases", 0)
            for lrt in self.machine.lrts
        )
        if unresolved:
            reasons.append(f"unresolved remote releases x{unresolved}")
        return "; ".join(reasons)

    def classify(
        self,
        violation: Optional[str] = None,
        algorithm=None,
    ) -> List[FaultOutcome]:
        """One :class:`FaultOutcome` per fault class in the plan.

        ``violation`` is the workload-level failure (invariant violation,
        deadlock, hang), or None if it completed and audits passed."""
        pending = (
            0 if self.reliable is None else self.reliable.pending_frames()
        )
        if violation is None and pending:
            violation = f"{pending} frames still pending after drain"
        degraded = self.degradation_detail(algorithm)
        outcomes = []
        for kind in self.plan.classes:
            injected = self.stats.get(kind, 0)
            if violation is not None:
                verdict, detail = "violated", violation
            elif degraded:
                verdict, detail = "degraded", degraded
            else:
                verdict, detail = "recovered", ""
            outcomes.append(
                FaultOutcome(kind, injected, verdict, detail)
            )
        return outcomes
