"""Deterministic fault injection ("nemesis") for the lock protocols.

Everything here is seeded and replayable: a :class:`FaultPlan` is a
JSON-serializable schedule of fault events derived from a seed, a
:class:`FaultInjector` arms it against one machine + OS, and
:mod:`repro.faults.nemesis` runs the full matrix of fault classes ×
lock algorithms × machine models, classifying every injection as
``recovered`` / ``degraded`` / ``violated``.
"""

from repro.faults.injector import FaultInjector, FaultOutcome
from repro.faults.nemesis import NemesisResult, run_matrix
from repro.faults.plan import (
    ALL_CLASSES,
    CRASH_CLASSES,
    LCU_ONLY_CLASSES,
    MESSAGE_CLASSES,
    SCHED_CLASSES,
    FaultEvent,
    FaultPlan,
    generate_plan,
)

__all__ = [
    "ALL_CLASSES", "CRASH_CLASSES", "LCU_ONLY_CLASSES",
    "MESSAGE_CLASSES", "SCHED_CLASSES",
    "FaultEvent", "FaultPlan", "generate_plan",
    "FaultInjector", "FaultOutcome",
    "NemesisResult", "run_matrix",
]
