"""Protocol messages exchanged between LCUs and LRTs.

Naming follows the paper (Section III): REQUEST, GRANT, WAIT, RETRY,
RELEASE and the head-update notification; the remaining message types
implement the races and corner cases the paper describes in prose
(release/enqueue race, migrated-thread release, overflow-reader draining,
re-allocation back-pressure).

A queue participant is identified by a ``Who`` tuple — (threadid, LCU id,
R/W mode) — exactly the tuple stored in the LRT's head/tail pointers and
in each LCU entry's ``next`` field.  ``gen`` is the paper's
``transfer_cnt``: a per-lock monotonically increasing transfer generation
that lets the LRT ignore stale head notifications when consecutive
transfers race.
"""

from __future__ import annotations

import dataclasses
from typing import NamedTuple


class Who(NamedTuple):
    """Queue-node identity: (threadid, LCU id, write-mode)."""

    tid: int
    lcu: int
    write: bool


@dataclasses.dataclass(frozen=True, slots=True)
class Request:
    """LCU -> LRT: thread asks for the lock (paper's REQUEST).

    ``priority`` implements the paper's future-work real-time extension:
    while priority requestors are outstanding, the LRT refuses new
    ordinary requests so the priority holder only waits for the queue
    that existed when it asked (bounded-jump priority).

    ``seq`` identifies *this issue* of the request: the LCU bumps it
    every time the thread (re-)requests, and the LRT echoes it on the
    per-request replies (RETRY directly, WAIT via the forward).  Crash
    reclamation can free a queue node while replies to it are still in
    flight; when the thread immediately re-requests under the same
    (addr, tid) key, the stale reply would otherwise bind to the *new*
    entry.  ``seq=0`` is a wildcard that always matches (legacy senders
    and tests).
    """
    addr: int
    req: Who
    nonblocking: bool = False
    priority: bool = False
    seq: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class FwdRequest:
    """LRT -> tail LCU: enqueue ``req`` behind the current tail.

    Carries the tail's identity/mode so a deallocated uncontended owner
    entry can be re-allocated (paper Figure 4b), the current transfer
    generation, and whether a granted *writer* must confirm that overflow
    readers have drained before taking the lock.
    """
    addr: int
    tail_tid: int
    tail_lcu: int
    tail_write: bool
    req: Who
    gen: int
    confirm_required: bool = False
    req_seq: int = 0        # echoed Request.seq (0 = wildcard)


@dataclasses.dataclass(frozen=True, slots=True)
class FwdNack:
    """tail LCU -> LRT: could not re-allocate an entry for the forwarded
    request (LCU full); the LRT retries after a backoff.

    ``phantom=True`` is a stronger refusal (hardened mode): the LCU has
    *no trace at all* of the named tail holding anything — no entry, no
    held-generation record, no FLT park.  That state cannot come back,
    so retrying the forward can never legitimately succeed; it could
    only false-match a newer queue node reusing the tail's (addr, tid)
    key and splice a stale link into the live queue.  The LRT treats a
    current-era phantom as a broken chain and reclaims instead of
    retrying."""
    addr: int
    original: FwdRequest
    phantom: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class WaitMsg:
    """tail LCU -> requestor LCU: you are enqueued (paper's WAIT)."""
    addr: int
    tid: int
    seq: int = 0            # echoed Request.seq (0 = wildcard)


@dataclasses.dataclass(frozen=True, slots=True)
class Grant:
    """Lock grant (paper's GRANT).

    * ``head=True``  — carries the Head token (write permission for
      writers; queue-head status for readers).
    * ``head=False`` — a reader share grant propagated down a run of
      consecutive readers.
    * ``from_lrt``   — initial/overflow grants issued by the LRT itself;
      these must not trigger a head-update notification.
    * ``overflow``   — an overflow-mode reader grant (no queue membership).
    * ``confirm_required`` — a granted writer must ask the LRT for
      ``OvfClear`` before acquiring (overflow readers may still hold).
    * ``lease``      — absolute cycle the grant's lease expires at
      (hardened mode; 0 = unleased).  Issued by the LRT with its grants;
      the per-entry lease watchdog may revoke a queue whose lease has
      expired with no observable progress (crash recovery).
    * ``era``        — the grant's fence token era (hardened mode).
      Together with ``gen`` it forms the monotone ``(era, fence)``
      pair: ``era`` counts lease reclamations of the address and
      ``gen`` orders grants within an era.  Memory-side handlers
      reject operations whose token predates the current era — a
      zombie holder reclaimed away during a stall gets a structured
      :class:`FencedOperation` instead of silent success.
    """
    addr: int
    tid: int
    head: bool
    gen: int
    from_lrt: bool = False
    overflow: bool = False
    confirm_required: bool = False
    lease: int = 0
    era: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class Retry:
    """LRT -> LCU: request rejected (nonblocking entry and lock taken, or
    a reservation holder has priority).  The entry is deallocated and the
    software layer retries (paper's RETRY)."""
    addr: int
    tid: int
    seq: int = 0            # echoed Request.seq (0 = wildcard)


@dataclasses.dataclass(frozen=True, slots=True)
class ReleaseMsg:
    """LCU -> LRT: release of an uncontended lock, an overflow-mode read
    grant, or a migrated thread's lock (paper's RELEASE).

    ``gen``/``era`` echo the hold's fence token (hardened mode).  The
    LRT rejects a release whose token predates the address's current
    fence era with a :class:`FencedOperation` — the releaser is a
    zombie whose hold was reclaimed away.  ``gen=-1`` is the legacy
    wildcard (unhardened paths never fence)."""
    addr: int
    rel: Who
    overflow: bool = False
    gen: int = -1
    era: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class ReleaseAck:
    """LRT -> LCU: release processed; deallocate the REL entry."""
    addr: int
    tid: int


@dataclasses.dataclass(frozen=True, slots=True)
class ReleaseRetry:
    """LRT -> LCU: a requestor was already enqueued behind you (release /
    enqueue race) — keep the REL entry and hand the lock to the forwarded
    requestor when it arrives (paper Section III-A)."""
    addr: int
    tid: int
    gen: int


@dataclasses.dataclass(frozen=True, slots=True)
class HeadNotify:
    """new head LCU -> LRT: the Head token moved here (paper Figure 5).
    The LRT replies with ``Dealloc`` to the previous head so its REL entry
    can be reclaimed only once the head pointer is valid again."""
    addr: int
    new: Who
    gen: int


@dataclasses.dataclass(frozen=True, slots=True)
class Dealloc:
    """LRT -> LCU: head pointer updated; drop your REL entry."""
    addr: int
    tid: int


@dataclasses.dataclass(frozen=True, slots=True)
class OvfCheck:
    """granted writer LCU -> LRT: may I take the lock, or are overflow
    readers still holding it?"""
    addr: int
    tid: int
    lcu: int


@dataclasses.dataclass(frozen=True, slots=True)
class OvfClear:
    """LRT -> writer LCU: all overflow readers drained; write away."""
    addr: int
    tid: int


@dataclasses.dataclass(frozen=True, slots=True)
class RemoteRelease:
    """LRT -> LCU (and LCU -> LCU along the queue): a migrated thread
    released from a foreign LCU; find the queue node owned by
    ``target_tid`` and release it (paper Section III-C).  ``via_tid`` is
    the queue node at the receiving LCU used to follow ``next`` pointers.
    """
    addr: int
    target_tid: int
    write: bool
    origin_lcu: int
    via_tid: int
    hops: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class RemoteReleaseAck:
    """owner LCU -> origin LCU: remote release performed; drop REL entry."""
    addr: int
    tid: int


@dataclasses.dataclass(frozen=True, slots=True)
class RemoteReleaseNack:
    """LCU -> LRT: queue walk for a migrated release failed (node gone /
    chain broken by a race); the LRT retries or resolves it."""
    addr: int
    target_tid: int
    write: bool
    origin_lcu: int
    attempts: int


# --------------------------------------------------------------------- #
# hardened-mode recovery messages (fault tolerance; see repro.faults)


@dataclasses.dataclass(frozen=True, slots=True)
class GrantNack:
    """LCU -> LRT (hardened mode): a Grant arrived for an entry that no
    longer exists — the queue node was lost (forced eviction, resource
    fault).  Carries enough identity for the LRT to decide whether the
    dead node was the head and reclaim the orphaned queue."""
    addr: int
    tid: int
    lcu: int
    gen: int
    head: bool


@dataclasses.dataclass(frozen=True, slots=True)
class QueueProbe:
    """LRT -> head LCU (hardened mode): the queue for ``addr`` has been
    silent for longer than the orphan threshold; is the head node still
    alive?"""
    addr: int
    tid: int


@dataclasses.dataclass(frozen=True, slots=True)
class QueueProbeAck:
    """head LCU -> LRT: answer to a :class:`QueueProbe`.  ``holding``
    distinguishes a node that *owns* the lock right now (ACQ/RCV entry,
    held-generation record, FLT park, overflow grant) from a mere
    remnant (REL/WAIT): the lease watchdog may only revoke a silent
    queue whose probed head is alive but not holding."""
    addr: int
    tid: int
    alive: bool
    holding: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class QueueReset:
    """LRT -> every LCU (hardened mode, broadcast): the queue for
    ``addr`` was found orphaned (dead head, unreachable successors) and
    has been reclaimed.  LCUs drop their ISSUED/WAIT nodes for the
    address and wake their waiters, which re-request through the normal
    path.  Live readers are converted to LRT-accounted overflow holders;
    writers holding the token resolve through their own message flows."""
    addr: int
    gen: int


@dataclasses.dataclass(frozen=True, slots=True)
class QueueResetAck:
    """LCU -> LRT: reply to a :class:`QueueReset` broadcast.  ``readers``
    is the number of live read holders this LCU converted to
    overflow-accounted mode; the LRT adds them to ``reader_cnt`` so the
    post-reset queue's first writer waits for them to drain.

    ``writer_tid`` (>= 0) reports a live *writer* that still owns the
    lock at this LCU — an ACQ/RCV holder or an invisible held-generation
    owner.  A reclaim is not only triggered by a dead head: a dead
    *tail* or middle node orphans the queue just the same, and then the
    era reset runs while the head legitimately holds.  The LRT re-seats
    the reported writer as the new era's queue head so nothing is
    granted over a live write hold.

    ``reader_tids`` enumerates *every* surviving read holder at this
    LCU — the newly-converted ones counted in ``readers`` plus holders
    that were already overflow-accounted before the reset.  The LRT
    forwards the union to the invariant monitor when the era closes, so
    the monitor can tell live survivors from zombies whose holds were
    reclaimed away (``readers`` stays the conversion count only; it
    alone feeds ``reader_cnt``)."""
    addr: int
    lcu: int
    readers: int
    writer_tid: int = -1
    reader_tids: tuple = ()


# --------------------------------------------------------------------- #
# gray-failure hardening messages (fencing + failure detection)


@dataclasses.dataclass(frozen=True, slots=True)
class FencedOperation:
    """LRT -> LCU (hardened mode, fencing armed): the operation named by
    ``op`` carried a fence token from a superseded era — its issuer is a
    zombie whose lease was reclaimed while it was stalled or partitioned
    away.  The LCU drops the stale local hold state and completes the
    thread's instruction with a fenced result, routing it through a
    fresh acquire instead of silent success."""
    addr: int
    tid: int
    op: str                 # "release" | "fwd"
    era: int                # the stale token's era
    current_era: int        # the address's live era
    #: the fenced token's ``gen`` — lets the LCU tell the stale hold's
    #: leftovers from a *newer incarnation* under the same (addr, tid)
    #: key (the thread may have re-acquired before this arrives); only
    #: state at or below this generation may be dropped.  -1 = unknown
    #: (legacy senders): match any generation.
    gen: int = -1


@dataclasses.dataclass(frozen=True, slots=True)
class Heartbeat:
    """core LCU -> every LRT (hardened mode, periodic): liveness beacon
    feeding the per-core suspicion-level failure detector.  Carried as
    a best-effort datagram by the reliable layer (never retransmitted —
    a lost beat IS the signal), but still subject to wire faults: a
    partitioned or zombied core's beats stop arriving (suspicion climbs
    toward reclaim-fast) while a merely slow core keeps beating (the
    lease watchdog probes it patiently instead of reclaiming a live
    holder)."""
    core: int
