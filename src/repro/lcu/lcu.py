"""The Lock Control Unit: per-core hardware lock queue node table.

Implements the paper's Section III behaviour:

* ``acq``/``rel`` ISA primitives (non-blocking, return True/False);
* distributed queue construction (entries are queue nodes, transfers are
  direct LCU-to-LCU grants);
* concurrent reader runs with a single Head token, ``RD_REL`` silent
  releases and token bypassing (Section III-B);
* a grant timer that forwards unclaimed grants, making the unit robust to
  thread suspension, migration and abandoned trylocks (Section III-C);
* nonblocking local/remote entries for forward progress under entry
  exhaustion (Section III-D);
* service of migrated-thread releases walking the queue (Section III-C).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.lcu import messages as msg
from repro.lcu.entry import (
    ACQ, ISSUED, LOCAL, ORDINARY, RCV, RD_REL, REL, REMOTE, WAIT, LcuEntry,
)
from repro.lcu.messages import Who
from repro.net.network import Endpoint, Network
from repro.params import MachineConfig
from repro.sim.engine import Signal, Simulator


class ProtocolError(RuntimeError):
    """An LCU/LRT state machine received a message it cannot legally
    handle — indicates a protocol bug (tests rely on this being loud)."""


# Generation stride applied by an LRT queue reclaim.  Reclaim opens a new
# *era* for the lock; the stride is far larger than the transfer-count lag
# an LRT can accumulate against in-flight LCU-side transfers, so every
# old-era generation compares below every new-era one and stale grants /
# forwards can be recognised and dropped.
RECLAIM_GEN_STRIDE = 1024


class LockControlUnit:
    """One LCU, collocated with core ``lcu_id``."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        network: Network,
        lcu_id: int,
        endpoint: Endpoint,
        lrt_endpoint_of: Callable[[int], Endpoint],
    ) -> None:
        self._sim = sim
        self._config = config
        self._net = network
        self.lcu_id = lcu_id
        self._endpoint = endpoint
        self._lrt_ep_of = lrt_endpoint_of

        self._entries: Dict[Tuple[int, int], LcuEntry] = {}
        self._ordinary_in_use = 0
        self._local_in_use = False
        self._remote_in_use = False
        self._signals: Dict[Tuple[int, int], Signal] = {}
        # (addr, tid) pairs holding an overflow-mode read grant whose entry
        # was removed at acquisition time (see DESIGN.md on how this models
        # the overflow bit the paper's message encoding would carry).
        self._overflow_grants: Set[Tuple[int, int]] = set()
        # Transfer generation (and hold mode) of uncontended locks whose
        # entry was removed at acquisition: (addr, tid) -> (gen, write).
        # Re-allocation (FwdRequest / rel) must resume from this gen, not
        # from the LRT's possibly-stale one: the LRT learns generations
        # off the critical path, so trusting it can fork the sequence and
        # misdirect a Dealloc at a live holder.  The mode lets crash
        # cleanup release a dead thread's invisible hold on its behalf.
        self._held_gen: Dict[Tuple[int, int], Tuple[int, bool]] = {}
        # Free Lock Table (paper IV-C, future work): locks released
        # uncontended are parked here instead of being returned to the
        # LRT, restoring the "implicit biasing" of coherence-based locks.
        # addr -> (tid, write, gen).  Empty when config.flt_entries == 0.
        self._flt: Dict[int, Tuple[int, bool, int]] = {}

        # --- hardened mode (fault tolerance; armed by repro.faults) ---
        #: when True, messages that would indicate a protocol bug in a
        #: fault-free run (grant for a missing entry, forward to an
        #: unknown tail) are treated as recoverable fault symptoms
        self.hardened = False
        #: crash-stop fault: a dead LCU drops every message and serves no
        #: instructions until :meth:`restart` (see machine.crash_core)
        self.dead = False
        #: addr -> generation of the last QueueReset seen; messages from
        #: earlier eras are stale and must be dropped, not acted on
        self._reset_gen: Dict[int, int] = {}
        #: per-LCU issue counter for outgoing Requests: stamps
        #: ``LcuEntry.req_seq`` / ``Request.seq`` so stale per-request
        #: replies (RETRY/WAIT) crossing a crash-reclaim re-request
        #: cannot bind to the newer entry under the same (addr, tid)
        self._req_seq = 0
        #: fault-injection pressure: None, or a temporary cap (< config)
        #: on the ordinary entry pool (models resource exhaustion)
        self._forced_capacity: Optional[int] = None
        #: (addr, tid) pairs whose queue node was forcibly evicted and is
        #: still dead weight in the LRT's queue: re-requesting before the
        #: reclaim's QueueReset would enqueue the same node twice
        self._evicted: set = set()
        #: fence tokens armed (gray-failure hardening): releases echo
        #: their hold's (gen, era) pair so the LRT can reject zombies
        self._fencing = False
        #: addr -> last fence era seen on a grant (diagnostic half of
        #: the token; enforcement is on the generation floor)
        self._era_seen: Dict[int, int] = {}

        self.stats: Dict[str, int] = {
            "acquires": 0, "releases": 0, "transfers": 0, "timeouts": 0,
            "alloc_failures": 0, "retries_received": 0,
            "remote_releases_served": 0, "fwd_nacks": 0,
        }
        #: most entries simultaneously in use (table-pressure telemetry)
        self.entries_highwater = 0
        #: optional hook ``fn(event, addr, tid, write)`` fired on every
        #: grant-level protocol action ("acquire", "release", "grant",
        #: "transfer", "timeout") — the attachment point for
        #: :class:`repro.check.invariants.InvariantMonitor`
        self.observer: Optional[Callable[[str, int, int, bool], None]] = None
        #: optional timestamp hook ``fn(event, addr, tid, write)`` fired at
        #: phase boundaries ("req_sent", "grant_sent", "grant_recv") — the
        #: attachment point for
        #: :class:`repro.obs.profile.ContentionProfiler`.  Kept separate
        #: from :attr:`observer` so the conformance monitor and the
        #: profiler can coexist.
        self.probe: Optional[Callable[[str, int, int, bool], None]] = None

    def _observe(self, event: str, addr: int, tid: int, write: bool) -> None:
        if self.observer is not None:
            self.observer(event, addr, tid, write)

    def _probe(self, event: str, addr: int, tid: int, write: bool) -> None:
        if self.probe is not None:
            self.probe(event, addr, tid, write)

    # ------------------------------------------------------------------ #
    # plumbing

    def _lcu_ep(self, lcu_id: int) -> Endpoint:
        return ("core", lcu_id)

    def _send_lcu(self, lcu_id: int, m: object) -> None:
        self._net.send(self._endpoint, self._lcu_ep(lcu_id), m)

    def _send_lrt(self, addr: int, m: object) -> None:
        self._net.send(self._endpoint, self._lrt_ep_of(addr), m)

    def _release_msg(
        self, addr: int, rel: Who, overflow: bool, gen: int = -1
    ) -> msg.ReleaseMsg:
        """Build a release, echoing the hold's fence token when fencing
        is armed (``gen`` is the hold's generation; the era half is the
        last one a grant delivered).  Unfenced builds keep the legacy
        wildcard, byte-for-byte."""
        if not self._fencing:
            return msg.ReleaseMsg(addr, rel, overflow)
        return msg.ReleaseMsg(
            addr, rel, overflow,
            gen=gen, era=self._era_seen.get(addr, 0),
        )

    def _fire(self, addr: int, tid: int) -> None:
        sig = self._signals.get((addr, tid))
        if sig is not None:
            sig.fire()

    def entry_signal(self, tid: int, addr: int) -> Signal:
        """Signal fired on any state change of the (addr, tid) entry —
        the local-spin target for threads waiting on this LCU."""
        key = (addr, tid)
        sig = self._signals.get(key)
        if sig is None:
            sig = Signal(self._sim)
            self._signals[key] = sig
        return sig

    def poll_ready(self, tid: int, addr: int) -> bool:
        """Whether retrying ``acq`` now could make progress (grant arrived,
        re-acquirable RD_REL, or no entry so a new request is needed)."""
        e = self._entries.get((addr, tid))
        if e is None:
            return True
        if e.status == RCV and not e.pending_ovf:
            return True
        return e.status == RD_REL and not e.write

    def entry(self, tid: int, addr: int) -> Optional[LcuEntry]:
        return self._entries.get((addr, tid))

    @property
    def entries_in_use(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # entry pool

    def _alloc(
        self, addr: int, tid: int, write: bool, for_release: bool = False
    ) -> Optional[LcuEntry]:
        ordinary_cap = self._config.lcu_ordinary_entries
        if self._forced_capacity is not None:
            ordinary_cap = min(ordinary_cap, self._forced_capacity)
        if self._ordinary_in_use < ordinary_cap:
            kind = ORDINARY
            self._ordinary_in_use += 1
        elif for_release and not self._remote_in_use:
            kind = REMOTE
            self._remote_in_use = True
        elif not for_release and not self._local_in_use:
            kind = LOCAL
            self._local_in_use = True
        else:
            self.stats["alloc_failures"] += 1
            return None
        e = LcuEntry(addr, tid, write, kind)
        self._entries[(addr, tid)] = e
        if len(self._entries) > self.entries_highwater:
            self.entries_highwater = len(self._entries)
        return e

    def _free(self, e: LcuEntry) -> None:
        self._entries.pop((e.addr, e.tid), None)
        if e.kind == ORDINARY:
            self._ordinary_in_use -= 1
        elif e.kind == LOCAL:
            self._local_in_use = False
        else:
            self._remote_in_use = False
        e.timer_seq += 1
        self._fire(e.addr, e.tid)

    # ------------------------------------------------------------------ #
    # fault injection surface (repro.faults; inert unless used)

    def harden(self, fencing: bool = True) -> None:
        """Switch protocol-bug symptoms (grant for a missing entry, stale
        forwards) from loud :class:`ProtocolError` to structured recovery
        via the LRT's orphan-queue reclamation.

        ``fencing`` arms fence-token echoing on releases and the
        structured :class:`~repro.lcu.messages.FencedOperation` answers
        to dead-era forwards; ``False`` is the sabotage mode (see
        ``repro faults --no-fencing``)."""
        self.hardened = True
        self._fencing = fencing

    def set_forced_capacity(self, limit: Optional[int]) -> None:
        """Temporarily cap the ordinary entry pool (``None`` restores the
        configured size) — models entry-table resource exhaustion."""
        self._forced_capacity = limit

    def evictable_entries(self) -> list:
        """(addr, tid) pairs whose forced eviction is a *recoverable*
        fault: waiting queue nodes that hold neither the lock nor the
        Head token.  Evicting a holder would lose the lock itself, which
        no protocol can undo — real eviction hardware has the same
        restriction (only non-owning entries are victim candidates)."""
        return [
            key
            for key, e in self._entries.items()
            if e.status in (ISSUED, WAIT) and not e.head and e.kind == ORDINARY
        ]

    def force_evict(self, addr: int, tid: int) -> bool:
        """Forcibly drop a waiting queue node (fault injection).  The
        queue is now silently broken: recovery happens when a grant or
        forward reaches the dead node (GrantNack -> LRT reclaim) or the
        LRT's idle-queue watchdog notices the silence."""
        e = self._entries.get((addr, tid))
        if e is None or e.status not in (ISSUED, WAIT) or e.head:
            return False
        self.stats["forced_evictions"] = (
            self.stats.get("forced_evictions", 0) + 1
        )
        self._observe("evict", addr, tid, e.write)
        # Tombstone until the queue is reclaimed: the dead node is still
        # linked at the LRT, so a re-request now would put the same
        # (lcu, tid) in the queue twice.  Must happen before _free — the
        # freed entry's signal wakes the spinning thread, which retries
        # its acquire in the same cycle.
        self._evicted.add((addr, tid))
        self._free(e)
        return True

    def force_flt_evict(self, addr: Optional[int] = None) -> bool:
        """Evict a parked Free Lock Table lock (fault injection): the
        invisible release becomes visible — the park is flushed to the
        LRT as an ordinary release, exactly what FLT capacity pressure
        does in hardware.  Returns False when nothing could be evicted."""
        if addr is None:
            if not self._flt:
                return False
            addr = next(iter(self._flt))
        parked = self._flt.get(addr)
        if parked is None:
            return False
        tid, write, gen = parked
        e = self._alloc(addr, tid, write, for_release=True)
        if e is None:
            return False  # no room to materialise the release; keep park
        del self._flt[addr]
        e.status = REL
        e.gen = gen
        self.stats["flt_forced_evictions"] = (
            self.stats.get("flt_forced_evictions", 0) + 1
        )
        self._send_lrt(
            addr,
            self._release_msg(addr, Who(tid, self.lcu_id, write), False, gen),
        )
        return True

    # ------------------------------------------------------------------ #
    # crash-stop faults (repro.faults crash_core / restart_core)

    def homed_tids(self) -> Set[int]:
        """Tids with lock state recorded at this LCU — a queue entry, a
        held-generation record, an overflow grant, or an FLT park.
        Empty iff crashing this unit would wipe no lock state (the
        "busy" crash victim policy asks exactly this)."""
        homed: Set[int] = {tid for (_addr, tid) in self._entries}
        homed |= {tid for (_addr, tid) in self._held_gen}
        homed |= {tid for (_addr, tid) in self._overflow_grants}
        homed |= {tid for (tid, _w, _g) in self._flt.values()}
        return homed

    def crash(self) -> Set[int]:
        """Crash-stop: this LCU dies, losing every entry, held-generation
        record, overflow grant and FLT park.  While dead it drops all
        protocol messages (counted in ``dead_drops``) — the LRT's lease
        watchdog and crash notifications recover the orphaned queues.
        Returns the tids whose lock state was homed here: each provably
        has no other record of holding or queueing on the wiped locks,
        so the caller kills those threads too (crash model: software and
        hardware state die together, making lease revocation safe)."""
        self.dead = True
        self.stats["crashes"] = self.stats.get("crashes", 0) + 1
        homed = self.homed_tids()
        self._entries.clear()
        self._ordinary_in_use = 0
        self._local_in_use = False
        self._remote_in_use = False
        self._overflow_grants.clear()
        self._held_gen.clear()
        self._flt.clear()
        self._evicted.clear()
        self._reset_gen.clear()
        self._signals.clear()
        return homed

    def restart(self) -> None:
        """Rebirth after :meth:`crash`: the unit comes back with an empty
        table and resumes serving messages.  Era fencing against stale
        pre-crash frames is re-established by the first QueueReset of
        each reclaimed lock (``_reset_gen`` repopulates from it)."""
        self.dead = False

    def purge_dead_tids(self, dead: Set[int]) -> None:
        """Release, on their behalf, locks held *at this live LCU* by
        threads that died in a core crash elsewhere (the migrated-holder
        case).  ACQ entries release immediately; invisible holds
        (held-generation records, FLT parks, overflow grants) are
        materialised as ordinary releases.  RCV/ISSUED/WAIT entries of
        dead threads are left to the grant timer, which already forwards
        unclaimed grants of absent threads (paper III-C)."""
        if self.dead:
            return
        for key, e in list(self._entries.items()):
            if e.tid in dead and e.status == ACQ:
                self.stats["crash_releases"] = (
                    self.stats.get("crash_releases", 0) + 1
                )
                self._observe("release", e.addr, e.tid, e.write)
                self._release_entry(e)
        for addr in [
            a for a, (tid, _w, _g) in self._flt.items() if tid in dead
        ]:
            if not self.force_flt_evict(addr):
                self._retry_purge(dead)
        for key in [k for k in self._held_gen if k[1] in dead]:
            addr, tid = key
            gen, write = self._held_gen[key]
            e = self._alloc(addr, tid, write, for_release=True)
            if e is None:
                self._retry_purge(dead)
                continue
            del self._held_gen[key]
            e.status = REL
            e.gen = gen
            self.stats["crash_releases"] = (
                self.stats.get("crash_releases", 0) + 1
            )
            self._observe("release", addr, tid, write)
            self._send_lrt(
                addr,
                self._release_msg(
                    addr, Who(tid, self.lcu_id, write), False, gen
                ),
            )
        for key in [k for k in self._overflow_grants if k[1] in dead]:
            addr, tid = key
            e = self._alloc(addr, tid, False, for_release=True)
            if e is None:
                self._retry_purge(dead)
                continue
            self._overflow_grants.discard(key)
            e.status = REL
            e.overflow = True
            self.stats["crash_releases"] = (
                self.stats.get("crash_releases", 0) + 1
            )
            self._observe("release", addr, tid, False)
            self._send_lrt(
                addr, msg.ReleaseMsg(addr, Who(tid, self.lcu_id, False), True)
            )

    def _retry_purge(self, dead: Set[int]) -> None:
        """Entry pool momentarily full while materialising a dead
        thread's release: retry once entries have drained."""
        self.stats["crash_purge_retries"] = (
            self.stats.get("crash_purge_retries", 0) + 1
        )
        self._sim.after(500, lambda: self.purge_dead_tids(dead))

    # ------------------------------------------------------------------ #
    # ISA primitives (invoked by the core; cost = config.lcu_latency,
    # charged by the executor)

    def instr_acquire(
        self, tid: int, addr: int, write: bool, priority: bool = False
    ) -> bool:
        """The ``acq`` primitive: returns True iff the lock is acquired.
        ``priority`` marks the request for the LRT's real-time handling
        (bounded-jump priority, the paper's future-work extension)."""
        key = (addr, tid)
        e = self._entries.get(key)
        if e is None:
            if self.hardened and key in self._evicted:
                # Forcibly-evicted node still queued at the LRT: hold off
                # re-requesting until the reclaim's QueueReset clears it
                # (a grant/forward hitting the dead node, or the idle
                # watchdog, triggers that reclaim).
                self.stats["tombstoned_acqs"] = (
                    self.stats.get("tombstoned_acqs", 0) + 1
                )
                return False
            parked = self._flt.get(addr)
            if parked is not None and parked[0] == tid and parked[1] == write:
                # FLT hit: the thread re-acquires its own parked lock with
                # zero remote traffic (the biased fast path).
                del self._flt[addr]
                self._held_gen[key] = (parked[2], parked[1])
                self.stats["flt_hits"] = self.stats.get("flt_hits", 0) + 1
                self.stats["acquires"] += 1
                self._observe("acquire", addr, tid, write)
                return True
            e = self._alloc(addr, tid, write)
            if e is None:
                return False
            e.status = ISSUED
            self._req_seq += 1
            e.req_seq = self._req_seq
            self._probe("req_sent", addr, tid, write)
            self._send_lrt(
                addr,
                msg.Request(
                    addr, Who(tid, self.lcu_id, write),
                    e.nonblocking, priority, seq=e.req_seq,
                ),
            )
            return False
        if e.write != write:
            # A stale entry from an abandoned request in the other mode;
            # the grant timer will clear it, then a fresh request goes out.
            return False
        if e.status == RCV and not e.pending_ovf:
            e.timer_seq += 1  # cancel the grant timer
            self.stats["acquires"] += 1
            self._observe("acquire", addr, tid, write)
            if e.overflow:
                # Overflow readers do not join the queue; remember the
                # grant so the release can be tagged, then free the entry.
                self._overflow_grants.add(key)
                self._free(e)
                return True
            e.status = ACQ
            if e.head and e.next is None:
                # Uncontended: remove the entry to leave room (paper III-A).
                self._held_gen[key] = (e.gen, e.write)
                self._free(e)
            return True
        if e.status == RD_REL and not write:
            # Local re-acquisition of a silently-released read lock.
            e.status = ACQ
            self.stats["acquires"] += 1
            self._observe("acquire", addr, tid, write)
            return True
        return False

    def instr_release(self, tid: int, addr: int, write: bool) -> bool:
        """The ``rel`` primitive: returns True iff the release was accepted
        (False = no free entry; the software loop retries)."""
        key = (addr, tid)
        e = self._entries.get(key)
        if e is None:
            overflow = key in self._overflow_grants
            if (
                not overflow
                and key in self._held_gen
                and len(self._flt) < self._config.flt_entries
            ):
                # Park the lock in the Free Lock Table instead of telling
                # the LRT: the release stays invisible remotely, so a
                # re-acquisition by this thread is free (paper IV-C).
                self._flt[addr] = (tid, write, self._held_gen.pop(key)[0])
                self.stats["flt_parks"] = self.stats.get("flt_parks", 0) + 1
                self.stats["releases"] += 1
                self._observe("release", addr, tid, write)
                return True
            # Uncontended lock, overflow-mode grant, or migrated thread:
            # re-allocate an entry and tell the LRT (paper III-A / III-C).
            e = self._alloc(addr, tid, write, for_release=True)
            if e is None:
                return False
            self._overflow_grants.discard(key)
            e.status = REL
            e.overflow = overflow
            e.gen = self._held_gen.pop(key, (0, write))[0]
            self.stats["releases"] += 1
            self._observe("release", addr, tid, write)
            self._send_lrt(
                addr,
                self._release_msg(
                    addr, Who(tid, self.lcu_id, write), overflow, e.gen
                ),
            )
            return True
        if e.status == ACQ and e.write == write:
            self.stats["releases"] += 1
            self._observe("release", addr, tid, write)
            self._release_entry(e)
            return True
        if e.status in (ISSUED, WAIT, RCV, RD_REL):
            # The local entry is a *stale queue node* left behind by
            # spinning before a migration (same tid re-enqueued elsewhere,
            # then the thread wandered back): the lock the thread actually
            # holds lives in another node.  Route the release through the
            # LRT's queue walk without touching the stale node — it will
            # self-heal via the grant timer when its grant arrives.
            self.stats["releases"] += 1
            self._observe("release", addr, tid, write)
            self._send_lrt(
                addr, msg.ReleaseMsg(addr, Who(tid, self.lcu_id, write), False)
            )
            return True
        raise ProtocolError(
            f"release (write={write}) of entry in invalid state {e!r}"
        )

    def instr_enqueue(self, tid: int, addr: int, write: bool) -> bool:
        """The optional Enqueue prefetch (paper footnote 1): issue the
        request / join the queue without acquiring."""
        key = (addr, tid)
        if key in self._entries:
            return True
        e = self._alloc(addr, tid, write)
        if e is None:
            return False
        e.status = ISSUED
        self._req_seq += 1
        e.req_seq = self._req_seq
        self._probe("req_sent", addr, tid, write)
        self._send_lrt(
            addr,
            msg.Request(
                addr, Who(tid, self.lcu_id, write), e.nonblocking,
                seq=e.req_seq,
            ),
        )
        return True

    # ------------------------------------------------------------------ #
    # internal release / transfer machinery

    def _release_entry(self, e: LcuEntry) -> None:
        """Release a held entry (ACQ, or RCV via the grant timer)."""
        if e.write or e.head:
            if e.write and not e.head:
                raise ProtocolError(f"writer without head token: {e!r}")
            if e.next is not None:
                self._transfer(e)
            else:
                e.status = REL
                e.timer_seq += 1
                self._send_lrt(
                    e.addr,
                    self._release_msg(
                        e.addr, Who(e.tid, self.lcu_id, e.write),
                        e.overflow, e.gen,
                    ),
                )
        else:
            # Intermediate reader: silent release, wait for the Head token.
            e.status = RD_REL
            e.timer_seq += 1
        self._fire(e.addr, e.tid)

    def _transfer(self, e: LcuEntry) -> None:
        """Hand the Head token to the next queue node (direct transfer)."""
        nxt = e.next
        assert nxt is not None
        self.stats["transfers"] += 1
        self._observe("transfer", e.addr, nxt.tid, nxt.write)
        self._probe("grant_sent", e.addr, nxt.tid, nxt.write)
        self._send_lcu(
            nxt.lcu,
            msg.Grant(
                e.addr,
                nxt.tid,
                head=True,
                gen=e.gen + 1,
                confirm_required=bool(nxt.write and e.pending_ovf),
            ),
        )
        e.status = REL
        e.timer_seq += 1

    def _arm_timer(self, e: LcuEntry) -> None:
        e.timer_seq += 1
        seq = e.timer_seq
        addr, tid = e.addr, e.tid
        self._sim.after(
            self._config.lcu_grant_timeout,
            lambda: self._timer_fire(addr, tid, seq),
        )

    def _timer_fire(self, addr: int, tid: int, seq: int) -> None:
        e = self._entries.get((addr, tid))
        if e is None or e.timer_seq != seq or e.status != RCV:
            return
        if e.pending_ovf:
            # Cannot pass a write grant we have not been cleared to use;
            # keep waiting for OvfClear, then the timer re-arms.
            self._arm_timer(e)
            return
        self.stats["timeouts"] += 1
        self._observe("timeout", addr, tid, e.write)
        if e.overflow:
            e.status = REL
            self._send_lrt(
                addr, msg.ReleaseMsg(addr, Who(tid, self.lcu_id, e.write), True)
            )
            self._fire(addr, tid)
            return
        # Behave as if the absent thread acquired and released instantly.
        self._release_entry(e)

    # ------------------------------------------------------------------ #
    # message handling

    def on_message(self, _src: Endpoint, m: object) -> None:
        if self.dead:
            # Crashed core: the unit neither processes nor answers.
            # Senders recover via the LRT's crash notification / lease
            # watchdog, never by retransmitting into a dead node.
            self.stats["dead_drops"] = self.stats.get("dead_drops", 0) + 1
            return
        h = _LCU_HANDLERS.get(m.__class__)
        if h is None:
            raise ProtocolError(f"LCU{self.lcu_id}: unexpected message {m!r}")
        getattr(self, h)(m)

    # -- grants ---------------------------------------------------------- #

    def _on_grant(self, m: msg.Grant) -> None:
        key = (m.addr, m.tid)
        if self.hardened and m.gen < self._reset_gen.get(m.addr, 0):
            # Stale-era grant: its queue was reclaimed.  Acting on it
            # could put a second Head token in circulation — drop it.
            self.stats["stale_grants_dropped"] = (
                self.stats.get("stale_grants_dropped", 0) + 1
            )
            return
        e = self._entries.get(key)
        if e is None:
            if self.hardened:
                # The queue node this grant targeted is gone (forced
                # eviction).  Bounce it to the LRT: a lost *head* grant
                # means the Head token died with the node, and the LRT
                # must reclaim the orphaned queue.
                self.stats["grant_nacks"] = (
                    self.stats.get("grant_nacks", 0) + 1
                )
                self._send_lrt(
                    m.addr,
                    msg.GrantNack(m.addr, m.tid, self.lcu_id, m.gen, m.head),
                )
                return
            raise ProtocolError(
                f"LCU{self.lcu_id}: grant {m!r} for missing entry"
            )
        e.gen = max(e.gen, m.gen)
        if m.lease:
            e.lease = max(e.lease, m.lease)
        if m.era:
            self._era_seen[m.addr] = max(
                self._era_seen.get(m.addr, 0), m.era
            )

        if m.overflow:
            if e.status not in (ISSUED, WAIT):
                raise ProtocolError(f"overflow grant in status {e.status}")
            e.status = RCV
            e.overflow = True
            self._probe("grant_recv", m.addr, m.tid, e.write)
            self._arm_timer(e)
            self._fire(m.addr, m.tid)
            return

        if not m.head:
            # Reader share grant travelling down a run of readers.
            if e.write:
                raise ProtocolError(f"share grant to writer entry {e!r}")
            if e.status in (ISSUED, WAIT):
                e.status = RCV
                self._probe("grant_recv", m.addr, m.tid, e.write)
                self._arm_timer(e)
                self._propagate_share(e)
                self._fire(m.addr, m.tid)
            # Duplicate share grants (already RCV/ACQ/RD_REL) are benign.
            return

        # Head token.
        if m.confirm_required and e.write:
            e.pending_ovf = True
            self._send_lrt(
                m.addr, msg.OvfCheck(m.addr, m.tid, self.lcu_id)
            )

        if e.status in (ISSUED, WAIT):
            e.status = RCV
            e.head = True
            self._probe("grant_recv", m.addr, m.tid, e.write)
            self._arm_timer(e)
            if not m.from_lrt:
                self._notify_head(e)
            if not e.write:
                self._propagate_share(e)
            self._fire(m.addr, m.tid)
        elif e.status in (RCV, ACQ):
            # A reader that already held a share grant now gets the token.
            if e.write:
                raise ProtocolError(f"duplicate head grant to writer {e!r}")
            e.head = True
            if not m.from_lrt:
                self._notify_head(e)
            self._fire(m.addr, m.tid)
        elif e.status == RD_REL:
            # Token bypasses a silently-released intermediate reader.
            if e.next is not None:
                self._probe("grant_sent", e.addr, e.next.tid, e.next.write)
                self._send_lcu(
                    e.next.lcu,
                    msg.Grant(
                        e.addr,
                        e.next.tid,
                        head=True,
                        gen=e.gen + 1,
                        confirm_required=bool(e.next.write and e.pending_ovf),
                    ),
                )
                self.stats["transfers"] += 1
                self._free(e)
            else:
                # Last node of the queue: become head, then release.
                e.head = True
                if not m.from_lrt:
                    self._notify_head(e)
                e.status = REL
                self._send_lrt(
                    e.addr,
                    self._release_msg(
                        e.addr, Who(e.tid, self.lcu_id, e.write),
                        False, e.gen,
                    ),
                )
        else:
            raise ProtocolError(f"head grant in status {e.status}: {e!r}")

    def _notify_head(self, e: LcuEntry) -> None:
        self._send_lrt(
            e.addr,
            msg.HeadNotify(e.addr, Who(e.tid, self.lcu_id, e.write), e.gen),
        )

    def _propagate_share(self, e: LcuEntry) -> None:
        if e.next is not None and not e.next.write:
            self._probe("grant_sent", e.addr, e.next.tid, False)
            self._send_lcu(
                e.next.lcu,
                msg.Grant(e.addr, e.next.tid, head=False, gen=e.gen),
            )

    # -- queue building --------------------------------------------------- #

    def _on_fwd(self, m: msg.FwdRequest) -> None:
        key = (m.addr, m.tail_tid)
        if self.hardened and m.gen < self._reset_gen.get(m.addr, 0):
            # Forward from a reclaimed era: the requestor was rescued by
            # the QueueReset broadcast and has re-requested; linking it
            # into the new-era queue through a dead tail would corrupt it.
            self.stats["stale_fwds_dropped"] = (
                self.stats.get("stale_fwds_dropped", 0) + 1
            )
            if self._fencing:
                # Tell the requestor its enqueue died with the old era
                # (for FencedOperation the token fields carry the gen
                # pair): its LCU frees the stale ISSUED/WAIT node if the
                # QueueReset broadcast has not already, so the thread
                # re-requests instead of waiting on a dropped forward.
                self._send_lcu(
                    m.req.lcu,
                    msg.FencedOperation(
                        m.addr, m.req.tid, "fwd",
                        era=m.gen,
                        current_era=self._reset_gen.get(m.addr, 0),
                    ),
                )
            return
        e = self._entries.get(key)
        parked = self._flt.get(m.addr)
        if (
            parked is not None
            and parked[0] == m.tail_tid
            and (
                e is None
                or (parked[1] == m.tail_write and e.write != m.tail_write)
            )
        ):
            # A requestor wants a lock parked in the FLT: the lock is
            # logically free, so hand it straight over.  The entry-mode
            # check covers a key collision: when the *parking thread
            # itself* re-requests in the other mode (its park cannot
            # satisfy the new mode), its fresh ISSUED entry reuses the
            # old tail's (addr, tid) key — that entry is the requestor,
            # not the tail this forward names, and linking the queue
            # through it would point the node at itself.
            del self._flt[m.addr]
            self.stats["transfers"] += 1
            gen = max(parked[2], m.gen) + 1
            self._probe("grant_sent", m.addr, m.req.tid, m.req.write)
            self._send_lcu(
                m.req.lcu,
                msg.Grant(
                    m.addr, m.req.tid, head=True, gen=gen,
                    confirm_required=bool(
                        m.req.write and m.confirm_required
                    ),
                ),
            )
            return
        if e is None:
            if self.hardened and key not in self._held_gen:
                # No entry, no held-generation record, no FLT park: this
                # LCU has no trace of the named tail *holding* anything.
                # In a fault-free run re-allocation always finds one of
                # the three, so the tail node must have been lost to a
                # fault the LRT has not noticed yet.  Re-allocating would
                # fabricate a phantom holder; nack with ``phantom`` set
                # so the LRT reclaims the broken chain instead of
                # retrying (a retry could only false-match a newer node
                # reusing this (addr, tid) key).
                self.stats["phantom_fwds_refused"] = (
                    self.stats.get("phantom_fwds_refused", 0) + 1
                )
                self.stats["fwd_nacks"] += 1
                self._send_lrt(m.addr, msg.FwdNack(m.addr, m, phantom=True))
                return
            # We were the uncontended owner; re-allocate (paper Fig. 4b).
            e = self._alloc(m.addr, m.tail_tid, m.tail_write)
            if e is None or e.nonblocking:
                # Nonblocking entries must not join queues; give the LRT
                # back-pressure and let it retry.
                if e is not None:
                    self._free(e)
                self.stats["fwd_nacks"] += 1
                self._send_lrt(m.addr, msg.FwdNack(m.addr, m))
                return
            e.status = ACQ
            e.head = True
            e.gen = max(m.gen, self._held_gen.pop(key, (0, m.tail_write))[0])
        if e.next is not None:
            if self.hardened:
                if e.next == m.req:
                    return  # duplicate forward: already linked
                # Stale forward racing a reclaim: the tail was re-linked
                # in a newer era.  Drop it — the requestor either was or
                # will be rescued by the era's QueueReset.
                self.stats["stale_fwds_dropped"] = (
                    self.stats.get("stale_fwds_dropped", 0) + 1
                )
                return
            raise ProtocolError(f"tail {e!r} already has a successor")
        e.next = m.req
        e.pending_ovf = e.pending_ovf or m.confirm_required
        e.gen = max(e.gen, m.gen)

        if e.status == REL:
            # Release/enqueue race (paper III-A): hand the lock straight
            # to the forwarded requestor.
            self.stats["transfers"] += 1
            self._probe("grant_sent", m.addr, m.req.tid, m.req.write)
            self._send_lcu(
                m.req.lcu,
                msg.Grant(
                    m.addr,
                    m.req.tid,
                    head=True,
                    gen=e.gen + 1,
                    confirm_required=bool(m.req.write and m.confirm_required),
                ),
            )
            return

        self._send_lcu(
            m.req.lcu, msg.WaitMsg(m.addr, m.req.tid, seq=m.req_seq)
        )
        if (
            not m.req.write
            and not e.write
            and e.status in (RCV, ACQ, RD_REL)
        ):
            # Tail holds (or is inside) an active read run: share the lock.
            self._probe("grant_sent", m.addr, m.req.tid, False)
            self._send_lcu(
                m.req.lcu,
                msg.Grant(m.addr, m.req.tid, head=False, gen=e.gen),
            )

    def _on_wait(self, m: msg.WaitMsg) -> None:
        e = self._entries.get((m.addr, m.tid))
        if e is None or (m.seq and m.seq != e.req_seq):
            return  # stale WAIT for an earlier issue of this request
        if e.status == ISSUED:
            e.status = WAIT
            self._fire(m.addr, m.tid)

    def _on_retry(self, m: msg.Retry) -> None:
        e = self._entries.get((m.addr, m.tid))
        self.stats["retries_received"] += 1
        if e is not None:
            if m.seq and m.seq != e.req_seq:
                # Stale RETRY: it answered an earlier issue of this
                # (addr, tid) request whose entry a crash reclaim
                # already freed; this entry is a newer incarnation.
                return
            if e.status != ISSUED:
                if self.hardened:
                    # A reclaim raced this RETRY: the entry it addressed
                    # is a newer incarnation.  Ignore.
                    return
                raise ProtocolError(f"RETRY for {e!r}")
            self._free(e)

    # -- releases ---------------------------------------------------------- #

    def _on_release_ack(self, m: msg.ReleaseAck) -> None:
        e = self._entries.get((m.addr, m.tid))
        if e is not None and e.status == REL:
            self._free(e)

    def _on_release_retry(self, m: msg.ReleaseRetry) -> None:
        e = self._entries.get((m.addr, m.tid))
        if e is not None and e.status == REL:
            e.gen = max(e.gen, m.gen)
        # Entry stays; the in-flight FwdRequest will collect the lock.

    def _on_dealloc(self, m: msg.Dealloc) -> None:
        e = self._entries.get((m.addr, m.tid))
        if e is not None and e.status == REL:
            self._free(e)
        # A non-REL entry under the same key is a *newer incarnation*
        # (e.g. the thread re-requested right after its parked FLT lock
        # was handed away); the Dealloc addressed the old one — ignore.

    def _on_ovf_clear(self, m: msg.OvfClear) -> None:
        e = self._entries.get((m.addr, m.tid))
        if e is not None and e.pending_ovf:
            e.pending_ovf = False
            if e.status == RCV:
                self._arm_timer(e)
            self._fire(m.addr, m.tid)

    # -- migrated-thread release (queue walk) ------------------------------ #

    def _on_remote_release(self, m: msg.RemoteRelease) -> None:
        via = self._entries.get((m.addr, m.via_tid))
        if via is None:
            self._send_lrt(
                m.addr,
                msg.RemoteReleaseNack(
                    m.addr, m.target_tid, m.write, m.origin_lcu, m.hops
                ),
            )
            return
        if m.via_tid == m.target_tid and via.status in (ACQ, RCV):
            if via.write != m.write:
                raise ProtocolError(
                    f"remote release mode mismatch on {via!r}"
                )
            if via.status == RCV:
                via.status = ACQ  # claim on behalf of the absent thread
            self.stats["remote_releases_served"] += 1
            self._release_entry(via)
            self._net.send(
                self._endpoint,
                self._lcu_ep(m.origin_lcu),
                msg.RemoteReleaseAck(m.addr, m.target_tid),
            )
            return
        nxt = via.next
        if nxt is None:
            self._send_lrt(
                m.addr,
                msg.RemoteReleaseNack(
                    m.addr, m.target_tid, m.write, m.origin_lcu, m.hops
                ),
            )
            return
        self._send_lcu(
            nxt.lcu,
            msg.RemoteRelease(
                m.addr, m.target_tid, m.write, m.origin_lcu, nxt.tid, m.hops + 1
            ),
        )

    def _on_remote_release_ack(self, m: msg.RemoteReleaseAck) -> None:
        e = self._entries.get((m.addr, m.tid))
        if e is not None and e.status == REL:
            self._free(e)

    # -- orphan-queue reclamation (hardened mode) -------------------------- #

    def _on_queue_reset(self, m: msg.QueueReset) -> None:
        """The LRT reclaimed this lock's orphaned queue.  Open the new
        era locally, drop our dead-era queue nodes (waking their threads
        so they re-request), and convert live holders into LRT-accounted
        overflow holders so the new era cannot grant a writer over them.
        Replies with the holder count the LRT must add to ``reader_cnt``.
        """
        self._reset_gen[m.addr] = max(self._reset_gen.get(m.addr, 0), m.gen)
        # The reclaim unlinked every node of this address: evicted
        # tombstones are now safe to re-request through.
        self._evicted = {k for k in self._evicted if k[0] != m.addr}
        readers = 0
        survivor = -1
        # Every surviving read hold at this LCU, by tid — converted ones
        # *and* pre-existing overflow holders.  ``readers`` stays the
        # conversion count (it alone feeds reader_cnt); the tid set goes
        # to the invariant monitor so it can tell survivors from
        # zombies when the era closes.
        survivor_readers = {
            tid for (a, tid) in self._overflow_grants if a == m.addr
        }
        for (addr, tid), e in list(self._entries.items()):
            if addr != m.addr:
                continue
            if e.overflow:
                if e.status in (ACQ, RCV):
                    survivor_readers.add(tid)
                continue  # already LRT-accounted; its release is safe
            if e.status in (ISSUED, WAIT, RD_REL, REL):
                # Dead-era waiters and completed releases: drop.  Waiter
                # threads wake via the entry signal and re-request into
                # the new era; a "evict" event widens the fairness
                # oracle's overtake budget for the queue jump.
                if e.status in (ISSUED, WAIT):
                    self._observe("evict", addr, tid, e.write)
                self.stats["reset_freed"] = (
                    self.stats.get("reset_freed", 0) + 1
                )
                self._free(e)
            elif e.status == ACQ and not e.write:
                # A reader inside its critical section: convert to an
                # overflow-style holder.  Its release then reaches the
                # LRT as an overflow release instead of vanishing as a
                # silent RD_REL, so draining is observable.
                e.overflow = True
                e.head = True       # release path: REL + ReleaseMsg
                e.next = None
                e.gen = max(e.gen, m.gen)
                readers += 1
                survivor_readers.add(tid)
            elif e.status == RCV and not e.write and not e.pending_ovf:
                # Share grant received but not yet claimed: same
                # conversion; both the claim path and the grant timer
                # already handle overflow-mode entries.
                e.overflow = True
                e.head = False
                e.next = None
                e.gen = max(e.gen, m.gen)
                readers += 1
                survivor_readers.add(tid)
            elif e.status == RCV and e.write and e.pending_ovf:
                # A granted writer still awaiting OvfClear: its clearance
                # died with the old era.  It never held the lock — drop
                # it and let the thread re-request.
                self._observe("evict", addr, tid, e.write)
                self.stats["reset_freed"] = (
                    self.stats.get("reset_freed", 0) + 1
                )
                self._free(e)
            elif e.write and e.status in (ACQ, RCV):
                # A live writer owning the lock (or the just-delivered
                # Head token): the reclaim was triggered by a dead tail
                # or middle node, not by this holder.  Its next-chain
                # died with the old era — sever it, adopt the new
                # generation, and report the hold so the LRT re-seats
                # this writer as the new era's queue head.
                e.next = None
                e.head = True
                e.gen = max(e.gen, m.gen)
                survivor = tid
        # Invisible holds have no entry but still own the lock: surface
        # them too, or the new era would grant over a live hold.
        for key in [k for k in self._held_gen if k[0] == m.addr]:
            _gen, w = self._held_gen[key]
            if w:
                # Held-generation writer: keep the record (its release
                # path is unchanged) and re-seat it at the LRT; future
                # forwards re-allocate its entry (paper Figure 4b).
                survivor = key[1]
            else:
                # Held-generation reader: convert to an overflow grant
                # so the release is LRT-visible and drains reader_cnt.
                del self._held_gen[key]
                self._overflow_grants.add(key)
                readers += 1
                survivor_readers.add(key[1])
        if self._flt.get(m.addr) is not None:
            # An FLT park is a *released* lock kept locally biased; the
            # new era starts from a clean table, so drop the bias (the
            # next local acquire simply re-requests).
            del self._flt[m.addr]
            self.stats["reset_unparked"] = (
                self.stats.get("reset_unparked", 0) + 1
            )
        self._send_lrt(
            m.addr,
            msg.QueueResetAck(
                m.addr, self.lcu_id, readers, survivor,
                reader_tids=tuple(sorted(survivor_readers)),
            ),
        )

    def _on_fenced(self, m: msg.FencedOperation) -> None:
        """A fence rejection: an operation this LCU issued for
        ``(addr, tid)`` carried a dead-era token — the hold it believed
        in was reclaimed while the core was stalled or partitioned away.

        Only a fenced *release* clears local state: the stale hold's
        entry-less records die and the REL entry is freed so the
        thread's release completes (no ack will ever come) and it
        re-acquires through a fresh request.  A fenced *forward* is
        informational — the QueueReset broadcast already rescued the
        requestor, and by the time this arrives the (addr, tid) key
        usually holds its live re-request, which must not be touched
        (same newer-incarnation rule as :meth:`_on_dealloc`).

        The thread may equally have re-acquired the *lock* before the
        fence for its pre-stall release arrives, so every drop is
        gen-guarded: only state at or below the fenced token's ``gen``
        belongs to the stale hold.  Overflow records are never touched
        — overflow releases are exempt from fencing entirely."""
        key = (m.addr, m.tid)
        self.stats["fenced_ops"] = self.stats.get("fenced_ops", 0) + 1
        if m.op != "release":
            return
        held = self._held_gen.get(key)
        if held is not None and (m.gen < 0 or held[0] <= m.gen):
            del self._held_gen[key]
        e = self._entries.get(key)
        if (
            e is not None and e.status == REL
            and (m.gen < 0 or e.gen <= m.gen)
        ):
            self._free(e)

    def _on_queue_probe(self, m: msg.QueueProbe) -> None:
        """Idle-queue watchdog asking whether the queue head node this
        LCU supposedly hosts is still alive.  'Alive' includes the two
        entry-less holding states: a deallocated uncontended owner
        (held-generation record) and an FLT-parked lock.  ``holding``
        additionally reports whether the node *owns* the lock right now
        (ACQ/RCV or an invisible hold) — the lease watchdog only revokes
        a silent queue whose probed head is alive but provably not
        holding (a REL/WAIT remnant in front of a crashed middle node);
        revoking a live holder could put two writers in the section."""
        key = (m.addr, m.tid)
        e = self._entries.get(key)
        held = (
            key in self._held_gen
            or key in self._overflow_grants
            or (
                self._flt.get(m.addr) is not None
                and self._flt[m.addr][0] == m.tid
            )
        )
        alive = e is not None or held
        holding = held or (e is not None and e.status in (ACQ, RCV))
        self._send_lrt(
            m.addr, msg.QueueProbeAck(m.addr, m.tid, alive, holding)
        )


# Message dispatch table: class-keyed lookup replaces the 12-branch
# isinstance chain on the hottest protocol path (one dict probe + one
# attribute fetch per delivered message).  Exact-class keying is safe —
# LCU messages are final dataclasses, never subclassed.  Values are
# method *names*, resolved per call, so tests and fault harnesses can
# still monkeypatch individual handlers.
_LCU_HANDLERS: dict = {
    msg.Grant: "_on_grant",
    msg.FwdRequest: "_on_fwd",
    msg.WaitMsg: "_on_wait",
    msg.Retry: "_on_retry",
    msg.ReleaseAck: "_on_release_ack",
    msg.ReleaseRetry: "_on_release_retry",
    msg.Dealloc: "_on_dealloc",
    msg.OvfClear: "_on_ovf_clear",
    msg.RemoteRelease: "_on_remote_release",
    msg.RemoteReleaseAck: "_on_remote_release_ack",
    msg.QueueReset: "_on_queue_reset",
    msg.QueueProbe: "_on_queue_probe",
    msg.FencedOperation: "_on_fenced",
}
