"""The paper's contribution: Lock Control Unit + Lock Reservation Table."""

from repro.lcu import api
from repro.lcu.entry import LcuEntry
from repro.lcu.lcu import LockControlUnit, ProtocolError
from repro.lcu.lrt import LockReservationTable, LrtEntry
from repro.lcu.messages import Who

__all__ = [
    "api", "LcuEntry", "LockControlUnit", "ProtocolError",
    "LockReservationTable", "LrtEntry", "Who",
]
