"""The Lock Reservation Table: per-memory-controller lock queue manager.

One LRT instance manages every lock whose physical address maps to its
memory controller.  Responsibilities (paper Section III):

* allocate/deallocate lock entries on demand — only *locked* addresses
  consume hardware state;
* keep the queue head/tail tuples and forward new requests to the tail;
* accept head-update notifications off the transfer critical path,
  guarded by the transfer generation (the paper's ``transfer_cnt``);
* resolve the release/enqueue race with RETRY answers;
* run the overflow machinery of Section III-D: overflow-mode reader
  grants (``reader_cnt``), the reservation that guarantees nonblocking
  entries eventually succeed, and writer/overflow-reader draining;
* service migrated-thread releases by walking the queue from the head
  (Section III-C);
* spill least-recently-used entries to an in-memory hash table when the
  set-associative table fills (Section III-E), charging main-memory
  latency for spills and refills.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from repro.lcu import messages as msg
from repro.lcu.lcu import RECLAIM_GEN_STRIDE, ProtocolError
from repro.lcu.messages import Who
from repro.net.network import Endpoint, Network
from repro.params import MachineConfig
from repro.sim.engine import Server, Simulator

_FWD_RETRY_BACKOFF = 300      # cycles before re-sending a nacked forward
_REMOTE_RETRY_BACKOFF = 300
_REMOTE_RETRY_MAX = 12

# Lease / revocation handshake (crash recovery, hardened mode).  A probe
# that goes unanswered is retried with exponential backoff; after the cap
# the probed head is declared dead and the queue is revoked.  A reclaim's
# QueueReset broadcast is likewise re-sent to unresponsive LCUs, and
# after the cap the reclaim completes with the survivors it heard from
# (graceful degradation — unreachable in-model unless an LCU dies
# *between* the broadcast and the crash notification).
_PROBE_TIMEOUT = 2_000        # cycles before a probe retry
_PROBE_TIMEOUT_CAP = 8_000
_PROBE_MAX_ATTEMPTS = 3
_RESET_RETRY_BACKOFF = 5_000  # cycles before re-broadcasting a reset
_RESET_RETRY_CAP = 40_000
_RESET_MAX_ATTEMPTS = 8

# Suspicion-level failure detector (gray-failure hardening).  When the
# fault harness arms heartbeats (machine.start_heartbeats), each LRT
# counts missed beats per core: suspicion = missed intervals, clamped to
# the maximum.  A fully suspected core (partitioned, zombied, crashed)
# is probed with the original fast ladder; a core that keeps beating is
# probed with delays stretched by its remaining innocence — a *slow*
# core must be waited out, not reclaimed.  Without heartbeat tracking
# every core is maximally suspect, which reproduces the pre-detector
# probe timings exactly (crash-class plans never arm heartbeats).
_SUSPICION_MAX = 8
_PROBE_PATIENCE_CAP = 30_000
# With the detector armed, a reset broadcast whose unacked cores are all
# maximally suspect force-completes after this many attempts instead of
# _RESET_MAX_ATTEMPTS: the missing acks are from cores that are silent
# to *everyone*, and the reliable layer redelivers the reset after heal.
_RESET_SUSPECT_ATTEMPTS = 3


class LrtEntry:
    """Lock state for one address (paper Figure 3, LRT side)."""

    __slots__ = (
        "addr", "head", "tail", "gen", "reader_cnt", "writers_waiting",
        "reservation", "reservation_seq", "pending_ovf_writer",
        "priority_members", "priority_seq",
        "last_activity", "reclaim_gen", "reset_pending", "probing",
        "lease_expiry", "probe_seq", "probe_attempts", "last_alive_probe",
        "reset_seq", "reset_attempts", "reset_survivor",
        "reclaim_victim", "reset_reader_tids",
    )

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self.head: Optional[Who] = None
        self.tail: Optional[Who] = None
        self.gen = 0
        self.reader_cnt = 0                    # overflow-mode readers
        self.writers_waiting = 0               # writers enqueued, not head
        self.reservation: Optional[Tuple[int, int]] = None  # (tid, lcu)
        self.reservation_seq = 0
        self.pending_ovf_writer: Optional[Tuple[int, int]] = None
        # real-time extension: (tid, lcu) of enqueued priority requestors;
        # while non-empty, new ordinary requests are refused so priority
        # holders only wait out the pre-existing queue
        self.priority_members: set = set()
        self.priority_seq = 0
        # hardened-mode recovery state (see repro.faults): cycle of the
        # last message touching this lock (watchdog orphan detection),
        # the generation below which in-flight messages belong to a
        # reclaimed era and must be dropped, the set of LCU ids whose
        # QueueResetAck is still outstanding, and whether a liveness
        # probe is already in flight
        self.last_activity = 0
        self.reclaim_gen = 0
        self.reset_pending: set = set()
        self.probing = False
        # lease-based crash recovery: the deadline stamped on the last
        # grant issued for this lock; probe retry bookkeeping (seq
        # invalidates stale timeout events, attempts cap the retries);
        # the snapshot of the last alive-but-not-holding probe answer
        # (two identical snapshots a full silent window apart == the
        # queue is wedged behind crashed state -> revoke); reset
        # re-broadcast bookkeeping for the revocation handshake.
        self.lease_expiry = 0
        self.probe_seq = 0
        self.probe_attempts = 0
        self.last_alive_probe: Optional[tuple] = None
        self.reset_seq = 0
        self.reset_attempts = 0
        # live writer reported by a QueueResetAck: re-seated as the new
        # era's queue head when the reset completes (see _reset_complete)
        self.reset_survivor: Optional[Who] = None
        # gray-failure fencing bookkeeping: the queue head whose lease
        # the in-flight reclaim revoked (the fence victim unless it is
        # re-seated), and the read holders live LCUs enumerated in their
        # acks (everything else holding this lock is fenced out)
        self.reclaim_victim: Optional[Who] = None
        self.reset_reader_tids: set = set()

    @property
    def queue_empty(self) -> bool:
        return self.head is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LRT {self.addr:#x} head={self.head} tail={self.tail} "
            f"gen={self.gen} ovf={self.reader_cnt} ww={self.writers_waiting}>"
        )


class LockReservationTable:
    """One LRT, collocated with memory controller ``lrt_id``."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        network: Network,
        lrt_id: int,
        endpoint: Endpoint,
        memory_touch: Optional[Callable[[int, Callable[[], None]], None]] = None,
    ) -> None:
        self._sim = sim
        self._config = config
        self._net = network
        self.lrt_id = lrt_id
        self._endpoint = endpoint
        self._memory_touch = memory_touch

        self._num_sets = max(1, config.lrt_entries // config.lrt_assoc)
        # set index -> OrderedDict[addr, LrtEntry] (LRU order)
        self._sets: Dict[int, "OrderedDict[int, LrtEntry]"] = {}
        self._overflow: Dict[int, LrtEntry] = {}   # "in main memory"
        self._live = 0                             # entries in table + overflow
        self._server = Server(sim, f"lrt{lrt_id}")
        self._remote_retry: Dict[Tuple[int, int, int], int] = {}

        self.stats: Dict[str, int] = {
            "requests": 0, "grants": 0, "forwards": 0, "retries": 0,
            "releases": 0, "overflow_grants": 0, "evictions": 0,
            "refills": 0, "reservations": 0, "head_notifies": 0,
            "stale_notifies": 0, "remote_releases": 0,
        }
        # hardened-mode recovery (armed by harden(); see repro.faults)
        self.hardened = False
        self._watchdog_interval = 0
        self._silence_threshold = 0
        self._lease_cycles = 0
        #: fencing armed (harden(fencing=True)): releases bearing a
        #: fence token from a reclaimed era are rejected with a
        #: structured FencedOperation instead of acked idempotently
        self._fencing = False
        #: addr -> fence era (count of lease reclamations); the "era"
        #: half of the (era, fence) token pair stamped on grants
        self._era: Dict[int, int] = {}
        # suspicion-level failure detector (enable_failure_detector):
        # core -> cycle of the last heartbeat received here
        self._hb_on = False
        self._hb_interval = 0
        self._last_heartbeat: Dict[int, int] = {}
        #: cores whose LCU has crashed (machine.crash_core notifies every
        #: LRT synchronously): reclaims skip them in reset broadcasts,
        #: and a queue whose head/tail lived there is revoked on the spot
        self._dead_cores: set = set()
        self._reclaim_started: Dict[int, int] = {}
        #: addr -> last reclaim era.  LCUs filter dead-era traffic with a
        #: persistent per-addr fence, so the generation must stay
        #: monotonic across entry removal/reinstall; only reclaims write
        #: here, so unfaulted runs never populate it.
        self._gen_floor: Dict[int, int] = {}
        #: addr -> highest generation ever issued (hardened mode):
        #: recorded when an entry is fully removed so a later reinstall
        #: resumes *above* every gen of the previous queue episode.
        #: Without this, gens restart at 1 and a delayed message from
        #: the old episode (e.g. a retransmitted HeadNotify with gen=9)
        #: outranks the fresh queue's gens, corrupting the head pointer
        #: and routing a Dealloc to the wrong LCU.  Distinct from
        #: ``_gen_floor``: the floor also fences releases, and a benign
        #: late duplicate release from the old episode must be *acked*,
        #: not fenced.
        self._gen_high: Dict[int, int] = {}
        #: addr -> cores whose QueueReset ack never arrived before the
        #: handshake force-completed (zombie / partitioned-away LCUs).
        #: Until such a core's late ack finally lands — the reliable
        #: layer keeps retransmitting the reset across the heal — its
        #: requests for the address are refused with Retry: the rejoin
        #: is *fenced*, because the core still carries dead-era queue
        #: nodes, and enqueuing its fresh request before it processes
        #: the reset lets the stale reset kill the new entry and the
        #: re-re-request self-link the queue.
        self._unsynced: Dict[int, set] = {}
        #: cycles from orphan detection to fully acknowledged reset —
        #: harvested into the recovery-latency histogram (repro.obs)
        self.recovery_latencies: list = []
        #: most locks simultaneously live (table + overflow) — the
        #: occupancy telemetry behind the spill/refill behaviour
        self.live_locks_highwater = 0
        #: optional hook ``fn(event, addr, tid, write)`` fired on queue
        #: decisions ("grant", "overflow_grant", "forward", "retry") —
        #: the attachment point for the invariant monitor
        self.observer: Optional[Callable[[str, int, int, bool], None]] = None
        #: optional timestamp hook ``fn(event, addr, tid, write)`` fired
        #: at phase boundaries ("enqueue", "grant_sent") — the attachment
        #: point for :class:`repro.obs.profile.ContentionProfiler`
        self.probe: Optional[Callable[[str, int, int, bool], None]] = None

    def _observe(self, event: str, addr: int, tid: int, write: bool) -> None:
        if self.observer is not None:
            self.observer(event, addr, tid, write)

    def _probe(self, event: str, addr: int, tid: int, write: bool) -> None:
        if self.probe is not None:
            self.probe(event, addr, tid, write)

    # ------------------------------------------------------------------ #
    # table management

    def _set_of(self, addr: int) -> "OrderedDict[int, LrtEntry]":
        # Index with the address bits *above* the home-LRT selection bits
        # (home = line % num_lrts): reusing the low bits would alias every
        # lock homed at this LRT into a single set and thrash the
        # spill/refill path.
        line = addr // self._config.line_size
        idx = (line // self._config.num_lrts) % self._num_sets
        s = self._sets.get(idx)
        if s is None:
            s = OrderedDict()
            self._sets[idx] = s
        return s

    def entry(self, addr: int) -> Optional[LrtEntry]:
        """Current entry for ``addr`` (table or overflow), or None."""
        s = self._set_of(addr)
        e = s.get(addr)
        if e is not None:
            return e
        return self._overflow.get(addr)

    def _lookup_penalty(self, addr: int) -> int:
        """Extra service cycles if this access hits the overflow table or
        will force an eviction."""
        s = self._set_of(addr)
        if addr in s:
            return 0
        pen = 0
        if addr in self._overflow:
            pen += self._config.local_mem_latency      # refill
        if len(s) >= self._config.lrt_assoc:
            pen += self._config.local_mem_latency      # spill a victim
        return pen

    def _install(self, addr: int) -> LrtEntry:
        """Return the live entry for ``addr``, creating / refilling it and
        spilling a victim if the set is full."""
        s = self._set_of(addr)
        e = s.get(addr)
        if e is not None:
            s.move_to_end(addr)
            return e
        e = self._overflow.pop(addr, None)
        if e is not None:
            self.stats["refills"] += 1
            self._touch_memory()
        else:
            e = LrtEntry(addr)
            floor = self._gen_floor.get(addr)
            if floor is not None:
                # Resume the post-reclaim era: a fresh gen of 1 would be
                # rejected by the LCUs' dead-era fences.
                e.gen = e.reclaim_gen = floor
            if self.hardened:
                high = self._gen_high.get(addr)
                if high is not None and high > e.gen:
                    # Resume above the previous queue episode so its
                    # delayed traffic can never outrank fresh grants.
                    e.gen = high
            self._live += 1
            if self._live > self.live_locks_highwater:
                self.live_locks_highwater = self._live
        if len(s) >= self._config.lrt_assoc:
            victim_addr, victim = s.popitem(last=False)
            self._overflow[victim_addr] = victim
            self.stats["evictions"] += 1
            self._touch_memory()
        s[addr] = e
        return e

    def _touch_memory(self) -> None:
        """Spills/refills consume memory-controller bandwidth in addition
        to the LRT pipeline latency (charged in the lookup penalty)."""
        if self._memory_touch is not None:
            self._memory_touch(self.lrt_id, lambda: None)

    def _remove(self, addr: int) -> None:
        in_set = self._set_of(addr).pop(addr, None)
        in_ovf = self._overflow.pop(addr, None)
        gone = in_set if in_set is not None else in_ovf
        if gone is not None:
            self._live -= 1
            if self.hardened and gone.gen > self._gen_high.get(addr, 0):
                self._gen_high[addr] = gone.gen

    @property
    def live_locks(self) -> int:
        return sum(len(s) for s in self._sets.values()) + len(self._overflow)

    # ------------------------------------------------------------------ #
    # plumbing

    def _send_lcu(self, lcu_id: int, m: object) -> None:
        self._net.send(self._endpoint, ("core", lcu_id), m)

    def on_message(self, _src: Endpoint, m: object) -> None:
        """Network delivery: serialize through the LRT pipeline.
        Heartbeats are liveness beacons, not queue operations: they are
        absorbed here (no lock address, no pipeline slot) so a beating
        core can never be delayed behind lock traffic."""
        if m.__class__ is msg.Heartbeat:
            self._last_heartbeat[m.core] = self._sim.now
            return
        penalty = self._lookup_penalty(self._addr_of(m))
        self._server.request(
            self._config.lrt_latency + penalty, lambda: self._process(m)
        )

    @staticmethod
    def _addr_of(m: object) -> int:
        return m.addr  # every LRT message carries the lock address

    def _process(self, m: object) -> None:
        if self.hardened:
            e = self.entry(m.addr)  # type: ignore[attr-defined]
            if e is not None:
                e.last_activity = self._sim.now
        h = _LRT_HANDLERS.get(m.__class__)
        if h is None:
            raise ProtocolError(f"LRT{self.lrt_id}: unexpected message {m!r}")
        getattr(self, h)(m)

    # ------------------------------------------------------------------ #
    # hardened mode: orphan detection and queue reclamation

    def harden(
        self,
        watchdog_interval: int = 20_000,
        silence_threshold: int = 50_000,
        lease_cycles: Optional[int] = None,
        fencing: bool = True,
    ) -> None:
        """Arm fault tolerance: tolerate the message anomalies the
        nemesis injects (stray releases, stale notifications, dead queue
        nodes) and run an idle-queue watchdog that probes queues silent
        for ``silence_threshold`` cycles and reclaims orphans.  Grants
        issued while hardened carry a lease expiring ``lease_cycles``
        after issue (default: the silence threshold); a queue that stays
        silent past its lease with a head that is provably not holding
        is revoked by the lease watchdog (crash recovery).

        ``fencing`` additionally arms fence-token enforcement: a
        release whose generation predates the address's reclaim floor —
        a zombie holder whose lease was revoked while it was stalled or
        partitioned away — is rejected with a structured
        :class:`~repro.lcu.messages.FencedOperation` instead of the
        idempotent ack (which would be silent success).  ``False`` is
        the sabotage mode the zombie-writer invariant check must catch.
        """
        if self.hardened:
            return
        self.hardened = True
        self._fencing = fencing
        self._watchdog_interval = watchdog_interval
        self._silence_threshold = silence_threshold
        self._lease_cycles = (
            lease_cycles if lease_cycles is not None else silence_threshold
        )
        self._sim.after(watchdog_interval, self._watchdog_tick)

    def enable_failure_detector(self, interval: int) -> None:
        """Arm the suspicion-level failure detector: the machine is
        about to start per-core heartbeats every ``interval`` cycles
        (machine.start_heartbeats).  Probe and reset ladders scale with
        per-core suspicion from now on; without this call every core is
        maximally suspect and the ladders match the pre-detector timing
        exactly."""
        self._hb_on = True
        self._hb_interval = interval

    def _suspicion_of(self, core: int) -> int:
        """Missed-heartbeat count for ``core``, clamped to
        ``_SUSPICION_MAX``.  Maximal when the detector is disarmed or
        the core has never been heard from."""
        if not self._hb_on:
            return _SUSPICION_MAX
        last = self._last_heartbeat.get(core)
        if last is None:
            return _SUSPICION_MAX
        missed = (self._sim.now - last) // self._hb_interval
        return missed if missed < _SUSPICION_MAX else _SUSPICION_MAX

    def note_dead_core(self, core: int) -> None:
        """Crash notification (machine.crash_core, synchronous): core
        ``core``'s LCU died with all its state.  Revoke every queue that
        runs through it — a head or tail homed there is gone, and grants
        or forwards sent to it vanish — and stop waiting for its
        acknowledgements in any in-flight revocation handshake."""
        self._dead_cores.add(core)
        self.stats["dead_core_notes"] = (
            self.stats.get("dead_core_notes", 0) + 1
        )
        # A crash voids the rejoin gate: the dead-era nodes died with
        # the LCU, and the late ack the gate waits for can never come.
        for synced in self._unsynced.values():
            synced.discard(core)
        for store in list(self._sets.values()) + [self._overflow]:
            for e in list(store.values()):
                if core in e.reset_pending:
                    e.reset_pending.discard(core)
                    if not e.reset_pending:
                        self._reset_complete(e)
                if e.reservation is not None and e.reservation[1] == core:
                    e.reservation = None
                    e.reservation_seq += 1
                if e.head is not None and (
                    e.head.lcu == core
                    or (e.tail is not None and e.tail.lcu == core)
                ):
                    self._reclaim(self._install(e.addr), "crash")
                # A queue whose visible endpoints survive may still have
                # *middle* nodes on the dead core (invisible to the LRT);
                # that wedge is detected by the lease watchdog below.

    def note_live_core(self, core: int) -> None:
        """Rebirth notification (machine.restart_core): the core's LCU is
        back — empty — and reset broadcasts include it again.  The
        failure detector grants it a fresh innocence window so the
        first probe after rebirth is not instantly fast-laddered."""
        self._dead_cores.discard(core)
        if self._hb_on:
            self._last_heartbeat[core] = self._sim.now

    def _watchdog_tick(self) -> None:
        if not self.hardened:
            return
        now = self._sim.now
        for store in list(self._sets.values()) + [self._overflow]:
            for e in list(store.values()):
                if (
                    e.head is not None
                    and not e.reset_pending
                    and not e.probing
                    and now - e.last_activity >= self._silence_threshold
                    and now >= e.lease_expiry
                ):
                    if e.head.lcu in self._dead_cores:
                        # Head homed on a core known dead: no probe can
                        # answer — revoke directly.
                        self._reclaim(self._install(e.addr), "crash")
                        continue
                    # Queue exists but nothing has touched it for a long
                    # time: ask the head's LCU whether the node is alive.
                    self._send_probe(e, 1)
        self._sim.after(self._watchdog_interval, self._watchdog_tick)

    def _send_probe(self, e: LrtEntry, attempt: int) -> None:
        e.probing = True
        e.probe_attempts = attempt
        e.probe_seq += 1
        seq = e.probe_seq
        addr = e.addr
        self.stats["probes"] = self.stats.get("probes", 0) + 1
        self._send_lcu(e.head.lcu, msg.QueueProbe(addr, e.head.tid))
        delay = min(_PROBE_TIMEOUT << (attempt - 1), _PROBE_TIMEOUT_CAP)
        if self._hb_on:
            # Adaptive timeout: stretch the retry by the probed core's
            # remaining innocence.  A core whose beats keep arriving is
            # slow, not gone — give it time instead of reclaiming a
            # live holder; a fully suspected core keeps the fast ladder.
            patience = _SUSPICION_MAX - self._suspicion_of(e.head.lcu)
            if patience > 0:
                delay = min(delay * (1 + patience), _PROBE_PATIENCE_CAP)
        self._sim.after(delay, lambda: self._probe_timeout(addr, seq))

    def _probe_timeout(self, addr: int, seq: int) -> None:
        """Capped-backoff retry of an unanswered liveness probe.  Probes
        are only unanswerable when the probed LCU is dead (delivery is
        otherwise reliable), so exhausting the cap declares the head
        dead and revokes the queue."""
        e = self.entry(addr)
        if e is None or not e.probing or e.probe_seq != seq:
            return
        if e.head is None or e.reset_pending:
            e.probing = False
            return
        if e.probe_attempts >= _PROBE_MAX_ATTEMPTS:
            e.probing = False
            self.stats["probe_timeouts"] = (
                self.stats.get("probe_timeouts", 0) + 1
            )
            self._reclaim(self._install(addr), "lease")
            return
        self._send_probe(e, e.probe_attempts + 1)

    def _on_probe_ack(self, m: msg.QueueProbeAck) -> None:
        e = self.entry(m.addr)
        if e is None:
            return
        e.probing = False
        if e.head is None or e.head.tid != m.tid:
            return  # the queue moved on while we probed
        if not m.alive:
            self._reclaim(self._install(m.addr), "watchdog")
            return
        if m.holding:
            # A live holder inside a long critical section: silence is
            # legitimate.  Wait for its release (or, if its thread died
            # in a crash, for the purge that releases on its behalf).
            e.last_alive_probe = None
            return
        # Alive but *not holding*: a REL/WAIT remnant at the recorded
        # head.  Legal transiently (head notification lag) — but if a
        # second full silent window passes with zero protocol traffic
        # and an identical generation, the token is circling a node that
        # died (crashed middle node): the lease is expired, revoke.
        snap = (m.tid, e.head.lcu, e.gen)
        if e.last_alive_probe == snap:
            e.last_alive_probe = None
            self.stats["lease_revocations"] = (
                self.stats.get("lease_revocations", 0) + 1
            )
            self._reclaim(self._install(m.addr), "lease")
            return
        e.last_alive_probe = snap

    def _on_grant_nack(self, m: msg.GrantNack) -> None:
        """A grant hit a dead LCU entry.  If it carried the Head token,
        the token is lost and the whole queue behind it is orphaned —
        reclaim.  A share grant to a dead reader needs nothing: the dead
        node is still linked and passes the token on when it arrives."""
        if not self.hardened:
            raise ProtocolError(f"LRT{self.lrt_id}: unexpected message {m!r}")
        self.stats["grant_nacks"] = self.stats.get("grant_nacks", 0) + 1
        e = self.entry(m.addr)
        if e is None or m.gen < e.reclaim_gen or not m.head:
            return  # stale echo of an era already reclaimed
        self._reclaim(self._install(m.addr), "grant_nack")

    def _reclaim(self, e: LrtEntry, reason: str) -> None:
        """The queue for ``e.addr`` is orphaned: the Head token died with
        an evicted node.  Open a new era (generation jump), wipe the
        queue pointers, and broadcast ``QueueReset`` so every LCU drops
        its dead-era nodes and reports its surviving read holders."""
        if e.reset_pending:
            return
        self.stats["reclaims"] = self.stats.get("reclaims", 0) + 1
        self.stats[f"reclaims_{reason}"] = (
            self.stats.get(f"reclaims_{reason}", 0) + 1
        )
        self._reclaim_started[e.addr] = self._sim.now
        self._era[e.addr] = self._era.get(e.addr, 0) + 1
        e.reclaim_victim = e.head
        e.reset_reader_tids = set()
        e.gen += RECLAIM_GEN_STRIDE
        e.reclaim_gen = e.gen
        self._gen_floor[e.addr] = e.gen
        e.head = e.tail = None
        e.writers_waiting = 0
        e.pending_ovf_writer = None
        e.reservation = None
        e.reservation_seq += 1
        e.priority_members.clear()
        e.probing = False
        e.last_alive_probe = None
        # Broadcast only to live cores: a dead LCU can never ack, and
        # waiting on it would wedge the reclaim forever.  (Its survivors
        # are zero by definition — its state died with it.)
        live = {
            c for c in range(self._config.cores) if c not in self._dead_cores
        }
        e.reset_pending = set(live)
        e.reset_seq += 1
        e.reset_attempts = 0
        e.reset_survivor = None
        if not live:
            self._reset_complete(e)
            return
        for lcu_id in live:
            self._send_lcu(lcu_id, msg.QueueReset(e.addr, e.gen))
        self._sim.after(
            _RESET_RETRY_BACKOFF,
            lambda addr=e.addr, seq=e.reset_seq: self._reset_check(addr, seq),
        )

    def _reset_check(self, addr: int, seq: int) -> None:
        """Revocation-handshake retry: re-broadcast ``QueueReset`` to the
        LCUs that have not acknowledged, with capped exponential backoff.
        Duplicates are idempotent at the LCU (the ack is dup-guarded here
        by ``reset_pending`` membership).  After the attempt cap the
        reclaim force-completes with the acks in hand — unreachable
        in-model, kept as the documented graceful-degradation bound."""
        e = self.entry(addr)
        if e is None or e.reset_seq != seq or not e.reset_pending:
            return
        e.reset_attempts += 1
        if e.reset_attempts >= _RESET_MAX_ATTEMPTS or (
            self._hb_on
            and e.reset_attempts >= _RESET_SUSPECT_ATTEMPTS
            and all(
                self._suspicion_of(c) >= _SUSPICION_MAX
                for c in e.reset_pending
            )
        ):
            self.stats["reset_forced"] = self.stats.get("reset_forced", 0) + 1
            silent = e.reset_pending - self._dead_cores
            if silent:
                self._unsynced.setdefault(addr, set()).update(silent)
            e.reset_pending.clear()
            self._reset_complete(e)
            return
        # A core may have died since the broadcast; stop waiting for it.
        e.reset_pending -= self._dead_cores
        if not e.reset_pending:
            self._reset_complete(e)
            return
        self.stats["reset_rebroadcasts"] = (
            self.stats.get("reset_rebroadcasts", 0) + len(e.reset_pending)
        )
        for lcu_id in e.reset_pending:
            self._send_lcu(lcu_id, msg.QueueReset(addr, e.reclaim_gen))
        delay = min(_RESET_RETRY_BACKOFF << e.reset_attempts, _RESET_RETRY_CAP)
        self._sim.after(delay, lambda: self._reset_check(addr, seq))

    def _reset_complete(self, e: LrtEntry) -> None:
        """Every live LCU has acknowledged the reset (or the handshake
        force-completed): the new era is open for business."""
        started = self._reclaim_started.pop(e.addr, None)
        if started is not None:
            self.recovery_latencies.append(self._sim.now - started)
        if e.reset_survivor is not None and e.head is None:
            # A live writer survived the reclaim still owning the lock
            # (the dead node was a tail or middle): re-seat it as the
            # new era's head so requests enqueue behind it instead of
            # being granted over a live write hold.  Fresh lease: the
            # survivor starts a new observation window.
            e.head = e.tail = e.reset_survivor
            self._lease_stamp(e)
            self.stats["reset_reseats"] = (
                self.stats.get("reset_reseats", 0) + 1
            )
        e.reset_survivor = None
        # Era-close notification for the invariant monitor: the acks
        # enumerated every hold that survived the reclaim at a live LCU
        # ("survivor" events), and anything else still believing it
        # holds this lock is a zombie — fenced out when fencing is
        # armed, or merely *recorded* in sabotage mode so the monitor's
        # zombie-writer check can prove the hole.  Skipped when the
        # victim died with its core: crash recovery already voided it.
        victim = e.reclaim_victim
        e.reclaim_victim = None
        if (
            self.observer is not None
            and victim is not None
            and victim.lcu not in self._dead_cores
        ):
            survivors = set(e.reset_reader_tids)
            seated = e.head.tid if e.head is not None else None
            if seated is not None:
                survivors.add(seated)
            for t in sorted(survivors):
                self._observe("survivor", e.addr, t, t == seated)
            self._observe(
                "fenced" if self._fencing else "reclaim",
                e.addr, victim.tid, victim.write,
            )
        e.reset_reader_tids = set()
        # Readers that survived the reset now gate the next writer
        # through the ordinary overflow-drain machinery.
        self._drained_check(e)

    def _on_reset_ack(self, m: msg.QueueResetAck) -> None:
        synced = self._unsynced.get(m.addr)
        if synced is not None:
            # The late ack from a zombie or partitioned-away core: it
            # has finally processed the reset, so its rejoin gate lifts.
            synced.discard(m.lcu)
            if not synced:
                del self._unsynced[m.addr]
        e = self.entry(m.addr)
        if e is None or m.lcu not in e.reset_pending:
            return
        e.reset_pending.discard(m.lcu)
        e.reader_cnt += m.readers
        e.reset_reader_tids.update(m.reader_tids)
        if m.writer_tid >= 0:
            e.reset_survivor = Who(m.writer_tid, m.lcu, True)
        if not e.reset_pending:
            self._reset_complete(e)

    # ------------------------------------------------------------------ #
    # requests

    def _on_request(self, m: msg.Request) -> None:
        self.stats["requests"] += 1
        req = m.req
        e = self.entry(m.addr)

        if e is not None and e.reset_pending:
            # Mid-reclaim: surviving reader counts are still being
            # collected, so a grant issued now could skip the overflow
            # drain.  Refuse; the software layer re-requests.
            self._retry(req, m.addr, m.seq)
            return

        synced = self._unsynced.get(m.addr)
        if synced and req.lcu in synced:
            # Fenced rejoin: the requesting core never acknowledged the
            # reset that closed its era and still carries dead-era
            # nodes.  Refuse until its late QueueResetAck lands (the
            # reliable channel delivers the reset before this Retry,
            # and the ack before the re-request, so the gate lifts in
            # bounded time).
            self.stats["rejoin_retries"] = (
                self.stats.get("rejoin_retries", 0) + 1
            )
            self._retry(req, m.addr, m.seq)
            return

        if e is None:
            # Lock free: allocate and grant immediately (paper Fig. 4a).
            e = self._install(m.addr)
            e.head = e.tail = req
            e.gen += 1
            self._probe("enqueue", m.addr, req.tid, req.write)
            self._grant(req, m.addr, head=True, gen=e.gen)
            return

        e = self._install(m.addr)  # refresh LRU / refill from overflow

        holder = e.reservation
        if holder is not None and holder != (req.tid, req.lcu):
            # A starving nonblocking entry holds a reservation: everyone
            # else is refused so the queue can drain (paper III-D).
            self._retry(req, m.addr, m.seq)
            return

        if e.queue_empty:
            # Lock held only by overflow readers, or free-but-reserved.
            if holder is not None:
                e.reservation = None
                e.reservation_seq += 1
            e.head = e.tail = req
            e.gen += 1
            confirm = req.write and e.reader_cnt > 0
            self._probe("enqueue", m.addr, req.tid, req.write)
            self._grant(req, m.addr, head=True, gen=e.gen, confirm=confirm)
            return

        if e.priority_members and not m.priority and not m.nonblocking:
            # A priority requestor is in the queue: hold ordinary
            # arrivals back until it has been served (they retry).
            self._retry(req, m.addr, m.seq)
            return

        if m.nonblocking:
            if (
                not req.write
                and not e.head.write
                and e.writers_waiting == 0
                and e.pending_ovf_writer is None
            ):
                # Overflow-mode read grant: no queue membership.
                e.reader_cnt += 1
                self.stats["overflow_grants"] += 1
                self._observe("overflow_grant", m.addr, req.tid, req.write)
                self._probe("enqueue", m.addr, req.tid, req.write)
                self._probe("grant_sent", m.addr, req.tid, req.write)
                self._send_lcu(
                    req.lcu,
                    msg.Grant(
                        m.addr, req.tid, head=False, gen=e.gen,
                        from_lrt=True, overflow=True,
                        lease=self._lease_stamp(e),
                        era=self._era.get(m.addr, 0),
                    ),
                )
                return
            self._retry(req, m.addr, m.seq)
            if e.reservation is None:
                e.reservation = (req.tid, req.lcu)
                e.reservation_seq += 1
                self.stats["reservations"] += 1
                self._schedule_reservation_timeout(m.addr, e.reservation_seq)
            return

        if m.priority:
            self._register_priority(e, m.addr, req)

        # Ordinary request on a taken lock: enqueue at the tail.
        if (
            not req.write
            and not e.head.write
            and e.writers_waiting == 0
            and e.pending_ovf_writer is None
        ):
            # The lock is in a writer-free read phase — a fact only the
            # LRT can know instantly (every request serializes here).
            # Grant the read share directly instead of waiting for it to
            # ripple hop-by-hop down the reader chain; the forward below
            # still links the requestor into the queue for fairness and
            # token passing.  (Same safety argument as overflow grants:
            # decisions are serialized at the LRT, and any later writer
            # enqueues behind this reader.)
            self.stats["grants"] += 1
            self._observe("grant", m.addr, req.tid, req.write)
            self._probe("grant_sent", m.addr, req.tid, req.write)
            self._send_lcu(
                req.lcu,
                msg.Grant(m.addr, req.tid, head=False, gen=e.gen,
                          from_lrt=True, lease=self._lease_stamp(e),
                          era=self._era.get(m.addr, 0)),
            )
        self._forward(e, m.addr, req, m.seq)

    def _forward(
        self, e: LrtEntry, addr: int, req: Who, req_seq: int = 0
    ) -> None:
        assert e.tail is not None
        self.stats["forwards"] += 1
        self._observe("forward", addr, req.tid, req.write)
        self._probe("enqueue", addr, req.tid, req.write)
        fwd = msg.FwdRequest(
            addr=addr,
            tail_tid=e.tail.tid,
            tail_lcu=e.tail.lcu,
            tail_write=e.tail.write,
            req=req,
            gen=e.gen,
            confirm_required=bool(req.write and e.reader_cnt > 0),
            req_seq=req_seq,
        )
        self._send_lcu(e.tail.lcu, fwd)
        e.tail = req
        if req.write:
            e.writers_waiting += 1

    def _register_priority(self, e: LrtEntry, addr: int, req: Who) -> None:
        """Open (or refresh) a bounded *priority window*: while members
        are registered, ordinary requests are deferred with RETRY, so a
        periodic real-time task re-acquiring the lock waits out only the
        current holder rather than a rebuilt queue.  The window closes
        after ``lrt_reservation_timeout`` cycles — clearing is
        deliberately timeout-only, because priority readers can release
        silently (RD_REL) with no LRT-visible event."""
        e.priority_members.add((req.tid, req.lcu))
        e.priority_seq += 1
        seq = e.priority_seq
        self.stats["priority_requests"] = (
            self.stats.get("priority_requests", 0) + 1
        )
        self._sim.after(
            self._config.lrt_reservation_timeout,
            lambda: self._priority_expire(addr, seq),
        )

    def _priority_expire(self, addr: int, seq: int) -> None:
        e = self.entry(addr)
        if e is not None and e.priority_seq == seq and e.priority_members:
            e.priority_members.clear()
            self._finalize(e)

    def _lease_stamp(self, e: LrtEntry) -> int:
        """Lease deadline to stamp on a grant being issued now (0 when
        not hardened: unleased).  Also pushes the entry's own expiry out,
        so the lease watchdog never second-guesses a fresh grant."""
        if not self.hardened:
            return 0
        lease = self._sim.now + self._lease_cycles
        if lease > e.lease_expiry:
            e.lease_expiry = lease
        return lease

    def _grant(
        self, req: Who, addr: int, head: bool, gen: int, confirm: bool = False
    ) -> None:
        self.stats["grants"] += 1
        self._observe("grant", addr, req.tid, req.write)
        self._probe("grant_sent", addr, req.tid, req.write)
        e = self.entry(addr)
        lease = self._lease_stamp(e) if e is not None else 0
        self._send_lcu(
            req.lcu,
            msg.Grant(
                addr, req.tid, head=head, gen=gen,
                from_lrt=True, confirm_required=confirm, lease=lease,
                era=self._era.get(addr, 0),
            ),
        )

    def _retry(self, req: Who, addr: int, seq: int = 0) -> None:
        self.stats["retries"] += 1
        self._observe("retry", addr, req.tid, req.write)
        self._send_lcu(req.lcu, msg.Retry(addr, req.tid, seq=seq))

    # ------------------------------------------------------------------ #
    # releases

    def _on_release(self, m: msg.ReleaseMsg) -> None:
        self.stats["releases"] += 1
        e = self.entry(m.addr)
        if self._fenced_release(e, m):
            return
        if e is None:
            if self.hardened:
                # A release whose lock state is gone (reclaimed, or the
                # queue drained through another path while this message
                # was delayed).  Acking is safe — the holder is done
                # either way — and keeps the releasing entry from
                # leaking.
                self.stats["stray_releases"] = (
                    self.stats.get("stray_releases", 0) + 1
                )
                self._send_lcu(m.rel.lcu, msg.ReleaseAck(m.addr, m.rel.tid))
                return
            raise ProtocolError(
                f"LRT{self.lrt_id}: release {m!r} for unknown lock"
            )
        e = self._install(m.addr)
        rel = m.rel

        if e.reset_survivor is not None and e.reset_survivor.tid == rel.tid:
            # The surviving writer a reset ack reported released while
            # the handshake was still collecting: its hold is over, so
            # it must not be re-seated as the new era's head (a stale
            # re-seat self-links on its next request).
            e.reset_survivor = None

        if m.overflow:
            if e.reader_cnt <= 0:
                if self.hardened:
                    # Duplicate overflow release (wire dup, or a convert-
                    # then-drain race): the holder is gone, the count
                    # already reflects it.  Ack idempotently.
                    self.stats["stray_releases"] = (
                        self.stats.get("stray_releases", 0) + 1
                    )
                    self._send_lcu(rel.lcu, msg.ReleaseAck(m.addr, rel.tid))
                    return
                raise ProtocolError(f"overflow release underflow: {m!r}")
            e.reader_cnt -= 1
            self._send_lcu(rel.lcu, msg.ReleaseAck(m.addr, rel.tid))
            self._drained_check(e)
            return

        if e.head is not None and (e.head.tid, e.head.lcu) == (rel.tid, rel.lcu):
            if e.tail is not None and (e.tail.tid, e.tail.lcu) == (
                rel.tid, rel.lcu,
            ):
                # Sole queue node released: the queue is now empty.
                e.head = e.tail = None
                self._send_lcu(rel.lcu, msg.ReleaseAck(m.addr, rel.tid))
                self._finalize(e)
            else:
                # Release/enqueue race: a requestor is already on its way
                # to the releaser (paper III-A).
                self._send_lcu(
                    rel.lcu, msg.ReleaseRetry(m.addr, rel.tid, e.gen)
                )
            return

        # Release from an LCU that is not the head: a migrated thread
        # (paper III-C).  Walk the queue starting at the head.
        if e.head is None:
            if self.hardened:
                # Queue was reclaimed out from under a holder we did not
                # know about; the release is moot.  Ack and re-check
                # whether the entry can be retired.
                self.stats["stray_releases"] = (
                    self.stats.get("stray_releases", 0) + 1
                )
                self._send_lcu(rel.lcu, msg.ReleaseAck(m.addr, rel.tid))
                self._drained_check(e)
                return
            raise ProtocolError(
                f"LRT{self.lrt_id}: non-head release {m!r} with empty queue"
            )
        self.stats["remote_releases"] += 1
        self._send_lcu(
            e.head.lcu,
            msg.RemoteRelease(
                m.addr, rel.tid, rel.write, rel.lcu, e.head.tid
            ),
        )

    def _fenced_release(self, e: Optional[LrtEntry], m: msg.ReleaseMsg) -> bool:
        """Fence-token check on a release (gray-failure hardening).

        A release whose ``gen`` predates the address's reclaim floor was
        issued under a lease era that has since been reclaimed — its
        sender is a zombie that stalled through its lease and resumed.
        Answering it with a plain ack would silently absorb the stale
        hold; instead the releaser gets a structured
        :class:`~repro.lcu.messages.FencedOperation` so its thread is
        routed through a fresh acquire.

        Exemptions (legitimate old-gen releases that must NOT fence):

        * overflow releases — overflow accounting is already idempotent,
          and fencing one would wedge the ``reader_cnt`` drain a reset
          re-credited;
        * mid-reset (``reset_pending``) — no grants are issued during
          the handshake, so there is no exclusion at risk; the existing
          stray-ack / survivor machinery owns these races;
        * the current head or the reset survivor — a live holder that
          the reclaim re-seated keeps its pre-reset generation.
        """
        if (
            not self._fencing
            or m.overflow
            or m.gen < 0                         # legacy wildcard
            or m.gen >= self._gen_floor.get(m.addr, 0)
        ):
            return False
        rel = m.rel
        if e is not None:
            if e.reset_pending:
                return False
            if e.head is not None and (e.head.tid, e.head.lcu) == (
                rel.tid, rel.lcu,
            ):
                return False
            if e.reset_survivor is not None and e.reset_survivor.tid == rel.tid:
                return False
        self.stats["fenced_releases"] = (
            self.stats.get("fenced_releases", 0) + 1
        )
        self._send_lcu(
            rel.lcu,
            msg.FencedOperation(
                m.addr, rel.tid, "release",
                era=m.era, current_era=self._era.get(m.addr, 0),
                gen=m.gen,
            ),
        )
        return True

    def _drained_check(self, e: LrtEntry) -> None:
        if e.reader_cnt == 0 and e.pending_ovf_writer is not None:
            tid, lcu = e.pending_ovf_writer
            e.pending_ovf_writer = None
            self._send_lcu(lcu, msg.OvfClear(e.addr, tid))
        self._finalize(e)

    def _finalize(self, e: LrtEntry) -> None:
        """Remove the entry once nothing references the lock anymore.
        An open priority window keeps the entry (and the window) alive
        across idle gaps until it expires, and a reclaim-in-progress
        keeps it alive until every LCU has acknowledged the reset (the
        era fence in ``reclaim_gen`` must survive until then)."""
        if (
            e.queue_empty
            and e.reader_cnt == 0
            and e.reservation is None
            and not e.priority_members
            and not e.reset_pending
        ):
            self._remove(e.addr)

    # ------------------------------------------------------------------ #
    # head tracking

    def _on_head_notify(self, m: msg.HeadNotify) -> None:
        self.stats["head_notifies"] += 1
        e = self.entry(m.addr)
        if e is None:
            if self.hardened:
                # Delayed notification for a lock that has since been
                # fully released or reclaimed: reclaim the notifier's
                # REL entry and move on.
                self.stats["stale_notifies"] += 1
                self._send_lcu(m.new.lcu, msg.Dealloc(m.addr, m.new.tid))
                return
            raise ProtocolError(
                f"LRT{self.lrt_id}: head notify {m!r} for unknown lock"
            )
        e = self._install(m.addr)
        if self.hardened and m.gen < e.reclaim_gen:
            # Dead-era notification racing the reset broadcast: the
            # queue it describes no longer exists.
            self.stats["stale_notifies"] += 1
            self._send_lcu(m.new.lcu, msg.Dealloc(m.addr, m.new.tid))
            return
        if m.gen > e.gen:
            old = e.head
            e.head = m.new
            e.gen = m.gen
            if m.new.write:
                e.writers_waiting = max(0, e.writers_waiting - 1)
                if e.reader_cnt > 0:
                    e.pending_ovf_writer = (m.new.tid, m.new.lcu)
            if old is not None:
                self._send_lcu(old.lcu, msg.Dealloc(m.addr, old.tid))
        else:
            # Stale notification: the notifier has already passed the lock
            # on (it is REL by now) — reclaim its entry directly.
            self.stats["stale_notifies"] += 1
            self._send_lcu(m.new.lcu, msg.Dealloc(m.addr, m.new.tid))

    def _on_ovf_check(self, m: msg.OvfCheck) -> None:
        e = self.entry(m.addr)
        if e is None or e.reader_cnt == 0:
            self._send_lcu(m.lcu, msg.OvfClear(m.addr, m.tid))
            return
        e.pending_ovf_writer = (m.tid, m.lcu)

    # ------------------------------------------------------------------ #
    # nack recovery

    def _on_fwd_nack(self, m: msg.FwdNack) -> None:
        """Target LCU had no room to re-allocate the tail entry; retry
        after a backoff (entries free up as transfers complete).  In
        hardened mode a nack can also mean the forward referenced a
        dead-era tail (phantom refusal) — those are dropped, the
        requestor re-enters via RETRY/reclaim instead."""
        fwd = m.original
        if self.hardened:
            e = self.entry(m.addr)
            if e is None or fwd.gen < e.reclaim_gen:
                self.stats["stale_fwds_dropped"] = (
                    self.stats.get("stale_fwds_dropped", 0) + 1
                )
                # The forwarded requestor's WAIT node died with the old
                # era (the QueueReset broadcast frees it and wakes the
                # thread); nothing to redeliver.
                return
            if m.phantom:
                # Current-era phantom: the target LCU has no trace of
                # the named tail holding anything, and that state cannot
                # reappear — the queue chain is broken at this link for
                # good.  Retrying would eventually false-match a *newer*
                # entry that reuses the tail's (addr, tid) key (e.g. the
                # healed zombie's next request), splicing a stale link
                # into the live queue and closing a cycle.  Reclaim
                # instead: the reset frees every waiter (including the
                # forwarded requestor) to re-enter the new era cleanly.
                self._reclaim(self._install(m.addr), "phantom_tail")
                return
        self._sim.after(
            _FWD_RETRY_BACKOFF, lambda: self._send_lcu(fwd.tail_lcu, fwd)
        )

    def _on_remote_nack(self, m: msg.RemoteReleaseNack) -> None:
        e = self.entry(m.addr)
        origin_ack = lambda: self._send_lcu(  # noqa: E731
            m.origin_lcu, msg.ReleaseAck(m.addr, m.target_tid)
        )
        if e is None:
            # The lock got fully released by another path; just ack.
            origin_ack()
            return
        e = self._install(m.addr)
        head = e.head
        if (
            head is not None
            and head.tid == m.target_tid
            and e.tail is not None
            and e.tail.tid == m.target_tid
            and e.tail.lcu == head.lcu
        ):
            # Single-node queue owned by the migrated releaser whose old
            # entry was deallocated (uncontended): the lock is now free.
            e.head = e.tail = None
            origin_ack()
            self._drained_check(e)
            return
        key = (m.addr, m.target_tid, m.origin_lcu)
        attempts = self._remote_retry.get(key, 0) + 1
        self._remote_retry[key] = attempts
        if attempts <= _REMOTE_RETRY_MAX and head is not None:
            walk = msg.RemoteRelease(
                m.addr, m.target_tid, m.write, m.origin_lcu, head.tid
            )
            self._sim.after(
                _REMOTE_RETRY_BACKOFF,
                lambda: self._send_lcu(head.lcu, walk),
            )
            return
        self._remote_retry.pop(key, None)
        if not m.write and e.reader_cnt > 0:
            # Conservative fallback: treat as an overflow reader whose
            # grant tag was lost to migration (documented in DESIGN.md).
            e.reader_cnt -= 1
            origin_ack()
            self._drained_check(e)
            return
        if self.hardened:
            # The walked-for node is unreachable — under fault injection
            # that means it died with a reclaimed era.  The release is
            # moot; ack the origin so its REL entry frees, and let the
            # watchdog reclaim the queue if it is truly wedged.
            self.stats["unresolved_remote_releases"] = (
                self.stats.get("unresolved_remote_releases", 0) + 1
            )
            origin_ack()
            return
        raise ProtocolError(
            f"LRT{self.lrt_id}: cannot resolve remote release {m!r}"
        )

    # ------------------------------------------------------------------ #
    # reservation timeout

    def _schedule_reservation_timeout(self, addr: int, seq: int) -> None:
        self._sim.after(
            self._config.lrt_reservation_timeout,
            lambda: self._reservation_expire(addr, seq),
        )

    def _reservation_expire(self, addr: int, seq: int) -> None:
        e = self.entry(addr)
        if e is None or e.reservation is None or e.reservation_seq != seq:
            return
        e.reservation = None
        e.reservation_seq += 1
        self._finalize(e)


# Message dispatch table mirroring the LCU's: one dict probe + one
# attribute fetch per message instead of a 9-branch isinstance chain.
# Keyed by exact class — LRT messages are final dataclasses.  Values are
# method names, resolved per call, so monkeypatched handlers still take.
_LRT_HANDLERS: dict = {
    msg.Request: "_on_request",
    msg.ReleaseMsg: "_on_release",
    msg.HeadNotify: "_on_head_notify",
    msg.OvfCheck: "_on_ovf_check",
    msg.FwdNack: "_on_fwd_nack",
    msg.RemoteReleaseNack: "_on_remote_nack",
    msg.GrantNack: "_on_grant_nack",
    msg.QueueResetAck: "_on_reset_ack",
    msg.QueueProbeAck: "_on_probe_ack",
}
