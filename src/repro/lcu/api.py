"""Software shims over the ``acq``/``rel`` primitives (paper Figure 2).

These are generators composed into thread programs with ``yield from``:

    yield from api.lock(addr, write=True)
    ... critical section ...
    yield from api.unlock(addr, write=True)

The acquire loop spins on the local LCU entry (``LcuWait``) — zero remote
traffic while waiting, exactly the local-spin property the paper claims.
The ``LcuWait`` safety timeout guards against missed wake-ups and keeps
abandoned states self-healing; it does not add traffic.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu import ops

# Re-check period while spinning: generous (wake-ups are signalled), it
# only bounds recovery from lost-wakeup races.
_SPIN_RECHECK = 5_000
# Back-off before re-trying a release that found no free LCU entry.
_RELEASE_BACKOFF = 64


def lock(addr: int, write: bool, priority: bool = False) -> Generator:
    """Blocking lock acquisition: ``while (!acq(addr, th_id, mode)) {}``.

    ``priority=True`` requests real-time treatment: the LRT holds back
    ordinary requestors that arrive later, so this thread waits out only
    the queue that existed when it asked (future-work extension)."""
    while True:
        ok = yield ops.LcuAcq(addr, write, priority)
        if ok:
            return
        yield ops.LcuWait(addr, timeout=_SPIN_RECHECK)


def trylock(addr: int, write: bool, retries: int = 16) -> Generator:
    """Bounded lock acquisition (paper Figure 2's retry-counted trylock).
    Returns True on success.  On failure the request may stay enqueued;
    the LCU grant timer passes any late grant along harmlessly."""
    for _ in range(retries):
        ok = yield ops.LcuAcq(addr, write)
        if ok:
            return True
        yield ops.LcuWait(addr, timeout=_SPIN_RECHECK)
    return False


def unlock(addr: int, write: bool) -> Generator:
    """Lock release: ``while (!rel(addr, th_id, mode)) {}``."""
    while True:
        ok = yield ops.LcuRel(addr, write)
        if ok:
            return
        yield ops.Compute(_RELEASE_BACKOFF)


def enqueue(addr: int, write: bool) -> Generator:
    """Issue the Enqueue prefetch (footnote 1): join the queue early so a
    later ``lock`` finds the grant already local."""
    yield ops.LcuEnq(addr, write)
