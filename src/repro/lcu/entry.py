"""LCU table entries and their status machine (paper Figure 3).

An entry records the locking state of one (address, threadid) pair — the
LCU is addressed by the tuple, so multiple threads on one core can request
the same lock.  Status values:

``ISSUED``  request sent to the LRT, no answer yet
``WAIT``    enqueued behind another node, spinning locally
``RCV``     lock grant received, local thread has not taken it yet
            (a grant timer runs in this state — see Section III-C)
``ACQ``     lock taken by the local thread
``REL``     released / transferred; entry preserved until the LRT confirms
            the head pointer no longer references it
``RD_REL``  intermediate reader released; silent state that waits for the
            Head token to pass through (re-acquirable by the local thread)

Entry kinds implement the overflow plan of Section III-D: a fixed pool of
``ordinary`` entries that may join queues, plus one ``local`` and one
``remote`` *nonblocking* entry that guarantee forward progress when the
pool is exhausted (they never enqueue; the LRT answers RETRY instead of
WAIT for them).
"""

from __future__ import annotations

from typing import Optional

from repro.lcu.messages import Who

# status values
ISSUED = "ISSUED"
WAIT = "WAIT"
RCV = "RCV"
ACQ = "ACQ"
REL = "REL"
RD_REL = "RD_REL"

# entry kinds
ORDINARY = "ordinary"
LOCAL = "local"        # nonblocking, reserved for local-thread requests
REMOTE = "remote"      # nonblocking, reserved for (remote) releases


class LcuEntry:
    """One row of the LCU table (~20 bytes of modelled hardware state)."""

    __slots__ = (
        "addr", "tid", "write", "status", "head", "next", "gen",
        "kind", "nonblocking", "overflow", "pending_ovf", "timer_seq",
        "lease", "req_seq",
    )

    def __init__(
        self, addr: int, tid: int, write: bool, kind: str = ORDINARY
    ) -> None:
        self.addr = addr
        self.tid = tid
        self.write = write
        self.status = ISSUED
        self.head = False
        self.next: Optional[Who] = None
        self.gen = 0                    # last known transfer generation
        self.kind = kind
        self.nonblocking = kind != ORDINARY
        self.overflow = False           # granted in overflow mode
        self.pending_ovf = False        # granted writer awaiting OvfClear
        self.timer_seq = 0              # invalidates stale grant timers
        self.lease = 0                  # lease deadline from the grant
        self.req_seq = 0                # seq of the Request this entry sent

    def identity(self, lcu_id: int) -> Who:
        return Who(self.tid, lcu_id, self.write)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f
            for f, b in (
                ("H", self.head),
                ("N", self.nonblocking),
                ("O", self.overflow),
                ("P", self.pending_ovf),
            )
            if b
        )
        mode = "W" if self.write else "R"
        return (
            f"<{self.status} {mode} addr={self.addr:#x} tid={self.tid} "
            f"{flags} next={self.next}>"
        )
