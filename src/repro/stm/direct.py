"""Untimed direct execution of transactional bodies (setup fast path).

Benchmarks need to prepopulate structures with thousands of keys; doing
that through the simulator would waste host time without affecting the
measured phase.  :class:`DirectTx` quacks like :class:`~repro.stm.core.Tx`
but applies reads/writes immediately and never yields, so a structure
method driven with it completes synchronously.

Only valid before concurrent simulation starts (single-"threaded",
no conflicts, no timing).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.stm.core import ObjectSTM, TObj


class DirectTx:
    """Tx stand-in whose read/write generators never actually yield."""

    def __init__(self, stm: ObjectSTM) -> None:
        self.stm = stm

    def read(self, obj: TObj) -> Generator:
        return obj.value
        yield  # pragma: no cover - makes this a generator function

    def write(self, obj: TObj, value: Any) -> Generator:
        obj.value = value
        return None
        yield  # pragma: no cover

    def read_new(self, value: Any) -> TObj:
        return self.stm.alloc(value)


def run_direct(stm: ObjectSTM, body: Callable[[DirectTx], Generator]) -> Any:
    """Run ``body`` to completion outside the simulation; returns its
    return value."""
    gen = body(DirectTx(stm))
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise RuntimeError(
        "transaction body yielded a simulation op under DirectTx — "
        "direct execution is only for pure structure setup"
    )


def populate(stm: ObjectSTM, structure, keys) -> None:
    """Insert ``keys`` into ``structure`` instantly (setup helper)."""
    for key in keys:
        run_direct(stm, lambda tx, k=key: structure.insert(tx, k))
