"""Object-based software transactional memory over the simulated machine.

Modelled on Fraser's OSTM as used by the paper (Section IV-B): an
object-granular STM with commit-time locking and a global version clock
(TL2-style opacity so traversals never see mixed states).  Three
configurations reproduce the paper's systems:

* ``sw-only`` — commit acquires *read* locks on the read set and write
  locks on the write set using software MRSW locks ("visible readers").
  Read-locking the data-structure root at every commit is the coherence
  hotspot the paper measures.
* ``lcu`` / ``ssb`` — the same visible-reader protocol with hardware
  reader-writer locks.
* ``fraser`` — invisible readers: only the write set is locked at commit
  and the read set is validated against versions + commit-lock marks.
  Faster, but loses privatization safety (as the paper notes), so it is a
  reference point rather than a safe equivalent.

Transactions are generators: the body receives a :class:`Tx` and uses
``yield from tx.read(obj)`` / ``yield from tx.write(obj, value)``; every
STM operation charges simulated memory accesses and lock operations, so
STM scaling emerges from the machine model rather than being assumed.

Deadlock freedom: commit locks are acquired in global address order.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.cpu import ops
from repro.cpu.machine import Machine
from repro.cpu.os_sched import SimThread
from repro.locks.base import get_algorithm


class AbortTx(Exception):
    """Raised inside a transaction body to force a retry (conflict).

    ``reason`` feeds the per-reason abort breakdown in
    :class:`StmStats.abort_reasons` (telemetry)."""

    def __init__(self, reason: str = "explicit") -> None:
        super().__init__(reason)
        self.reason = reason


class TooManyRetries(RuntimeError):
    """A transaction failed to commit within the retry budget."""


class TObj:
    """One transactional object: a committed value + version, with a
    simulated header address and a lock handle."""

    __slots__ = ("addr", "value", "version", "lock_handle", "commit_locked")

    def __init__(self, addr: int, value: Any, lock_handle: Any) -> None:
        self.addr = addr
        self.value = value
        self.version = 0
        self.lock_handle = lock_handle
        # id of the Tx currently holding this object's commit write lock
        self.commit_locked: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TObj({self.addr:#x}, v{self.version}, {self.value!r})"


@dataclasses.dataclass
class StmStats:
    commits: int = 0
    aborts: int = 0
    app_cycles: int = 0
    commit_cycles: int = 0
    reads: int = 0
    writes: int = 0
    #: abort reason -> count ("stale-read", "stale-write",
    #: "commit-validation", "explicit")
    abort_reasons: Dict[str, int] = dataclasses.field(default_factory=dict)

    def count_abort(self, reason: str) -> None:
        self.aborts += 1
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1

    @property
    def abort_rate(self) -> float:
        total = self.commits + self.aborts
        return self.aborts / total if total else 0.0


class ObjectSTM:
    """One STM instance bound to one machine."""

    VARIANTS = {
        # name -> (lock algorithm, visible readers)
        "sw-only": ("mrsw", True),
        "lcu": ("lcu", True),
        "ssb": ("ssb", True),
        "fraser": ("mrsw", False),
    }

    #: contention-manager policies: retry delay as f(attempt) cycles
    BACKOFF_POLICIES = {
        "exponential": lambda attempt: min(40 * (2 ** min(attempt, 6)), 2_000),
        "linear": lambda attempt: min(80 * (attempt + 1), 2_000),
        "none": lambda attempt: 1,
    }

    def __init__(
        self,
        machine: Machine,
        variant: str = "sw-only",
        irrevocable_support: bool = False,
        backoff: str = "exponential",
    ) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(
                f"unknown STM variant {variant!r}; known: "
                f"{sorted(self.VARIANTS)}"
            )
        if backoff not in self.BACKOFF_POLICIES:
            raise ValueError(
                f"unknown backoff policy {backoff!r}; known: "
                f"{sorted(self.BACKOFF_POLICIES)}"
            )
        self._backoff_of = self.BACKOFF_POLICIES[backoff]
        self.backoff_policy = backoff
        lock_name, visible = self.VARIANTS[variant]
        self.machine = machine
        self.variant = variant
        self.visible_readers = visible
        self.algo = get_algorithm(lock_name)(machine)
        self.clock = 0
        self.stats = StmStats()
        self._next_tx_id = 1
        # Irrevocability (a benefit of RW-lock STMs the paper cites via
        # Dice & Shavit): one reader-writer token — regular commits hold
        # it in read mode (they proceed concurrently), an irrevocable
        # transaction holds it in write mode and thus runs against a
        # frozen object world, so it can never abort.
        self.irrevocable_support = irrevocable_support
        self._irrev_token = self.algo.make_lock() if irrevocable_support else None

    def alloc(self, value: Any) -> TObj:
        """Allocate a transactional object holding ``value``."""
        return TObj(
            self.machine.alloc.alloc_line(), value, self.algo.make_lock()
        )

    # ------------------------------------------------------------------ #

    def run(
        self,
        thread: SimThread,
        body: Callable[["Tx"], Generator],
        max_retries: int = 200,
    ) -> Generator:
        """Run ``body`` transactionally; the generator's return value is
        the body's return value from the committing attempt.  The retry
        delay follows the STM's contention-manager policy (``backoff``
        constructor argument)."""
        sim = self.machine.sim
        for attempt in range(max_retries):
            tx = Tx(self, thread)
            t0 = sim.now
            try:
                result = yield from body(tx)
            except AbortTx as abort:
                self.stats.count_abort(abort.reason)
                self.stats.app_cycles += sim.now - t0
                yield ops.Compute(self._backoff_of(attempt))
                continue
            t1 = sim.now
            self.stats.app_cycles += t1 - t0
            ok = yield from tx._commit()
            self.stats.commit_cycles += sim.now - t1
            if ok:
                self.stats.commits += 1
                return result
            self.stats.count_abort("commit-validation")
            yield ops.Compute(self._backoff_of(attempt))
        raise TooManyRetries(
            f"transaction aborted {max_retries} times ({self.variant})"
        )

    def run_irrevocable(
        self, thread: SimThread, body: Callable[["IrrevocableTx"], Generator]
    ) -> Generator:
        """Run ``body`` as an *irrevocable* transaction: it executes
        exactly once and can never abort.  Requires
        ``irrevocable_support=True`` (which makes regular commits take
        the irrevocability token in read mode)."""
        if not self.irrevocable_support:
            raise RuntimeError(
                "construct the STM with irrevocable_support=True"
            )
        sim = self.machine.sim
        t0 = sim.now
        yield from self.algo.lock(thread, self._irrev_token, True)
        tx = IrrevocableTx(self)
        result = yield from body(tx)
        if tx.written:
            self.clock += 1
            for obj in tx.written:
                yield ops.Store(obj.addr, self.clock)
                obj.version = self.clock
        yield from self.algo.unlock(thread, self._irrev_token, True)
        self.stats.commits += 1
        self.stats.commit_cycles += sim.now - t0
        return result


class IrrevocableTx:
    """Transaction handle for :meth:`ObjectSTM.run_irrevocable`.

    With the irrevocability token held in write mode no regular commit
    can run, so objects are frozen: reads return committed values
    directly and writes apply in place (versions are bumped once at the
    end so doomed concurrent regular transactions notice)."""

    __slots__ = ("stm", "written")

    def __init__(self, stm: ObjectSTM) -> None:
        self.stm = stm
        self.written: List[TObj] = []

    def read(self, obj: TObj) -> Generator:
        self.stm.stats.reads += 1
        yield ops.Load(obj.addr)
        return obj.value

    def write(self, obj: TObj, value: Any) -> Generator:
        self.stm.stats.writes += 1
        yield ops.Store(obj.addr, 0)
        if obj.value is not value:
            obj.value = value
        if obj not in self.written:
            self.written.append(obj)

    def read_new(self, value: Any) -> TObj:
        obj = self.stm.alloc(value)
        self.written.append(obj)
        return obj


class Tx:
    """One transaction attempt."""

    __slots__ = ("stm", "thread", "tx_id", "start_clock", "reads", "writes")

    def __init__(self, stm: ObjectSTM, thread: SimThread) -> None:
        self.stm = stm
        self.thread = thread
        self.tx_id = stm._next_tx_id
        stm._next_tx_id += 1
        self.start_clock = stm.clock
        self.reads: Dict[TObj, int] = {}
        self.writes: Dict[TObj, Any] = {}

    # ------------------------------------------------------------------ #
    # body-side operations

    def read(self, obj: TObj) -> Generator:
        """Open ``obj`` for reading; returns its (snapshot-consistent)
        value.  Aborts if the object changed since the transaction began
        (opacity — traversals never see mixed states)."""
        if obj in self.writes:
            return self.writes[obj]
        self.stm.stats.reads += 1
        if obj not in self.reads:
            yield ops.Load(obj.addr)
            if obj.version > self.start_clock or (
                obj.commit_locked not in (None, self.tx_id)
            ):
                raise AbortTx("stale-read")
            self.reads[obj] = obj.version
        return obj.value

    def write(self, obj: TObj, value: Any) -> Generator:
        """Open ``obj`` for writing; the new value is buffered until
        commit."""
        self.stm.stats.writes += 1
        if obj not in self.writes and obj not in self.reads:
            yield ops.Load(obj.addr)
            if obj.version > self.start_clock or (
                obj.commit_locked not in (None, self.tx_id)
            ):
                raise AbortTx("stale-write")
            self.reads[obj] = obj.version
        self.writes[obj] = value

    def read_new(self, value: Any) -> TObj:
        """Allocate a transaction-private object (visible on commit)."""
        obj = self.stm.alloc(value)
        self.writes[obj] = value
        return obj

    # ------------------------------------------------------------------ #
    # commit

    def _commit(self) -> Generator:
        stm = self.stm
        algo = stm.algo
        if stm.irrevocable_support:
            # Concurrent regular commits share the token in read mode; an
            # irrevocable transaction excludes them all in write mode.
            yield from algo.lock(self.thread, stm._irrev_token, False)
        result = yield from self._commit_inner()
        if stm.irrevocable_support:
            yield from algo.unlock(self.thread, stm._irrev_token, False)
        return result

    def _commit_inner(self) -> Generator:
        stm = self.stm
        algo = stm.algo
        to_lock: List[Tuple[TObj, bool]] = []
        for obj in self.reads:
            if obj in self.writes:
                continue
            if stm.visible_readers:
                to_lock.append((obj, False))
        for obj in self.writes:
            to_lock.append((obj, True))
        to_lock.sort(key=lambda p: p[0].addr)

        acquired: List[Tuple[TObj, bool]] = []
        for obj, write in to_lock:
            yield from algo.lock(self.thread, obj.lock_handle, write)
            acquired.append((obj, write))
            if write:
                obj.commit_locked = self.tx_id

        # validate the read set
        valid = True
        for obj, ver in self.reads.items():
            yield ops.Load(obj.addr)
            if obj.version != ver or (
                obj.commit_locked not in (None, self.tx_id)
            ):
                valid = False
                break

        # Read locks have done their job once validation completes:
        # release them *before* write-back, and in acquisition (address)
        # order so the hottest locks — structure roots have the lowest
        # addresses — unblock waiters and let Head tokens sweep reader
        # chains as early as possible.  (Holding read locks across the
        # write-back pins LCU entries long enough to exhaust the table
        # on deep structures; see DESIGN.md.)
        for obj, write in acquired:
            if not write:
                yield from algo.unlock(self.thread, obj.lock_handle, False)

        if valid and self.writes:
            stm.clock += 1
            commit_version = stm.clock
            for obj, value in self.writes.items():
                yield ops.Store(obj.addr, commit_version)
                obj.value = value
                obj.version = commit_version

        for obj, write in acquired:
            if write:
                obj.commit_locked = None
                yield from algo.unlock(self.thread, obj.lock_handle, True)
        return valid
