"""Transactional red-black tree (integer set), CLRS-style.

The STM benchmark the paper uses most: every operation starts at the
root, so with visible readers the root's lock is read-locked by *every*
committing transaction — the coherence hotspot of Figures 11/12.

Nodes are :class:`~repro.stm.core.TObj` instances whose committed value
is an immutable :class:`RBNode` record.  A ``nil`` sentinel object plays
CLRS's ``T.nil`` but is *static* — it is never read or written through
the STM (CLRS's trick of stashing the parent in ``nil`` during delete is
replaced by passing the parent explicitly), so the sentinel creates no
artificial contention.

All methods are generators to be run inside a transaction body
(``yield from tree.insert(tx, key)``).
"""

from __future__ import annotations

from typing import Generator, NamedTuple, Optional

from repro.stm.core import ObjectSTM, TObj, Tx


class RBNode(NamedTuple):
    key: Optional[int]
    red: bool
    left: TObj
    right: TObj
    parent: TObj


class RBTree:
    """Red-black tree set with transactional operations."""

    def __init__(self, stm: ObjectSTM) -> None:
        self.stm = stm
        self.nil = stm.alloc(None)
        self.nil.value = RBNode(None, False, self.nil, self.nil, self.nil)
        # the root pointer is itself transactional (root replacement)
        self.root_ptr = stm.alloc(self.nil)

    # ------------------------------------------------------------------ #
    # field helpers (nil is static: no STM traffic)

    def _get(self, tx: Tx, node: TObj) -> Generator:
        if node is self.nil:
            return self.nil.value
        v = yield from tx.read(node)
        return v

    def _update(self, tx: Tx, node: TObj, **fields) -> Generator:
        assert node is not self.nil, "attempt to mutate the nil sentinel"
        v = yield from self._get(tx, node)
        yield from tx.write(node, v._replace(**fields))

    # ------------------------------------------------------------------ #
    # queries

    def contains(self, tx: Tx, key: int) -> Generator:
        node = yield from tx.read(self.root_ptr)
        while node is not self.nil:
            v = yield from self._get(tx, node)
            if key == v.key:
                return True
            node = v.left if key < v.key else v.right
        return False

    def snapshot_keys(self, tx: Tx) -> Generator:
        """In-order key list (test/validation helper)."""
        out = []
        root = yield from tx.read(self.root_ptr)

        def walk(n):
            if n is self.nil:
                return
            v = yield from self._get(tx, n)
            yield from walk(v.left)
            out.append(v.key)
            yield from walk(v.right)

        yield from walk(root)
        return out

    def check_invariants(self, tx: Tx) -> Generator:
        """Verify RB invariants; returns the black height.  Test helper —
        raises AssertionError on violation."""
        root = yield from tx.read(self.root_ptr)
        rv = yield from self._get(tx, root)
        assert not rv.red or root is self.nil, "red root"

        def check(n) -> Generator:
            if n is self.nil:
                return 1
            v = yield from self._get(tx, n)
            lh = yield from check(v.left)
            rh = yield from check(v.right)
            assert lh == rh, f"black-height mismatch at {v.key}"
            if v.red:
                lv = yield from self._get(tx, v.left)
                rvv = yield from self._get(tx, v.right)
                assert not lv.red and not rvv.red, f"red-red at {v.key}"
            return lh + (0 if v.red else 1)

        h = yield from check(root)
        return h

    # ------------------------------------------------------------------ #
    # rotations (CLRS 13.2)

    def _rotate_left(self, tx: Tx, x: TObj) -> Generator:
        xv = yield from self._get(tx, x)
        y = xv.right
        yv = yield from self._get(tx, y)
        yield from self._update(tx, x, right=yv.left)
        if yv.left is not self.nil:
            yield from self._update(tx, yv.left, parent=x)
        yield from self._update(tx, y, parent=xv.parent)
        if xv.parent is self.nil:
            yield from tx.write(self.root_ptr, y)
        else:
            pv = yield from self._get(tx, xv.parent)
            if pv.left is x:
                yield from self._update(tx, xv.parent, left=y)
            else:
                yield from self._update(tx, xv.parent, right=y)
        yield from self._update(tx, y, left=x)
        yield from self._update(tx, x, parent=y)

    def _rotate_right(self, tx: Tx, x: TObj) -> Generator:
        xv = yield from self._get(tx, x)
        y = xv.left
        yv = yield from self._get(tx, y)
        yield from self._update(tx, x, left=yv.right)
        if yv.right is not self.nil:
            yield from self._update(tx, yv.right, parent=x)
        yield from self._update(tx, y, parent=xv.parent)
        if xv.parent is self.nil:
            yield from tx.write(self.root_ptr, y)
        else:
            pv = yield from self._get(tx, xv.parent)
            if pv.right is x:
                yield from self._update(tx, xv.parent, right=y)
            else:
                yield from self._update(tx, xv.parent, left=y)
        yield from self._update(tx, y, right=x)
        yield from self._update(tx, x, parent=y)

    # ------------------------------------------------------------------ #
    # insert (CLRS 13.3)

    def insert(self, tx: Tx, key: int) -> Generator:
        """Insert ``key``; returns False if already present."""
        parent = self.nil
        node = yield from tx.read(self.root_ptr)
        while node is not self.nil:
            v = yield from self._get(tx, node)
            if key == v.key:
                return False
            parent = node
            node = v.left if key < v.key else v.right

        z = tx.read_new(RBNode(key, True, self.nil, self.nil, parent))
        if parent is self.nil:
            yield from tx.write(self.root_ptr, z)
        else:
            pv = yield from self._get(tx, parent)
            if key < pv.key:
                yield from self._update(tx, parent, left=z)
            else:
                yield from self._update(tx, parent, right=z)
        yield from self._insert_fixup(tx, z)
        return True

    def _insert_fixup(self, tx: Tx, z: TObj) -> Generator:
        while True:
            zv = yield from self._get(tx, z)
            if zv.parent is self.nil:
                break
            pv = yield from self._get(tx, zv.parent)
            if not pv.red:
                break
            gp = pv.parent
            gv = yield from self._get(tx, gp)
            if zv.parent is gv.left:
                uncle = gv.right
                uv = yield from self._get(tx, uncle)
                if uv.red:
                    yield from self._update(tx, zv.parent, red=False)
                    yield from self._update(tx, uncle, red=False)
                    yield from self._update(tx, gp, red=True)
                    z = gp
                else:
                    if z is pv.right:
                        z = zv.parent
                        yield from self._rotate_left(tx, z)
                        zv = yield from self._get(tx, z)
                        pv = yield from self._get(tx, zv.parent)
                        gp = pv.parent
                    yield from self._update(tx, zv.parent, red=False)
                    yield from self._update(tx, gp, red=True)
                    yield from self._rotate_right(tx, gp)
            else:
                uncle = gv.left
                uv = yield from self._get(tx, uncle)
                if uv.red:
                    yield from self._update(tx, zv.parent, red=False)
                    yield from self._update(tx, uncle, red=False)
                    yield from self._update(tx, gp, red=True)
                    z = gp
                else:
                    if z is pv.left:
                        z = zv.parent
                        yield from self._rotate_right(tx, z)
                        zv = yield from self._get(tx, z)
                        pv = yield from self._get(tx, zv.parent)
                        gp = pv.parent
                    yield from self._update(tx, zv.parent, red=False)
                    yield from self._update(tx, gp, red=True)
                    yield from self._rotate_left(tx, gp)
        root = yield from tx.read(self.root_ptr)
        if root is not self.nil:
            rv = yield from self._get(tx, root)
            if rv.red:
                yield from self._update(tx, root, red=False)

    # ------------------------------------------------------------------ #
    # delete (CLRS 13.4, with the fixup parent passed explicitly so the
    # static nil sentinel is never written)

    def _transplant(self, tx: Tx, u: TObj, v: TObj) -> Generator:
        uv = yield from self._get(tx, u)
        if uv.parent is self.nil:
            yield from tx.write(self.root_ptr, v)
        else:
            pv = yield from self._get(tx, uv.parent)
            if pv.left is u:
                yield from self._update(tx, uv.parent, left=v)
            else:
                yield from self._update(tx, uv.parent, right=v)
        if v is not self.nil:
            yield from self._update(tx, v, parent=uv.parent)

    def _minimum(self, tx: Tx, node: TObj) -> Generator:
        while True:
            v = yield from self._get(tx, node)
            if v.left is self.nil:
                return node
            node = v.left

    def remove(self, tx: Tx, key: int) -> Generator:
        """Remove ``key``; returns False if absent."""
        z = yield from tx.read(self.root_ptr)
        while z is not self.nil:
            v = yield from self._get(tx, z)
            if key == v.key:
                break
            z = v.left if key < v.key else v.right
        if z is self.nil:
            return False

        zv = yield from self._get(tx, z)
        y_originally_red = zv.red
        if zv.left is self.nil:
            x = zv.right
            fix_parent = zv.parent
            yield from self._transplant(tx, z, zv.right)
        elif zv.right is self.nil:
            x = zv.left
            fix_parent = zv.parent
            yield from self._transplant(tx, z, zv.left)
        else:
            y = yield from self._minimum(tx, zv.right)
            yv = yield from self._get(tx, y)
            y_originally_red = yv.red
            x = yv.right
            if yv.parent is z:
                fix_parent = y
                if x is not self.nil:
                    yield from self._update(tx, x, parent=y)
            else:
                fix_parent = yv.parent
                yield from self._transplant(tx, y, yv.right)
                zv = yield from self._get(tx, z)
                yield from self._update(tx, y, right=zv.right)
                yv2 = yield from self._get(tx, y)
                yield from self._update(tx, yv2.right, parent=y)
            yield from self._transplant(tx, z, y)
            zv = yield from self._get(tx, z)
            yield from self._update(tx, y, left=zv.left, red=zv.red)
            yv2 = yield from self._get(tx, y)
            yield from self._update(tx, yv2.left, parent=y)
        if not y_originally_red:
            yield from self._delete_fixup(tx, x, fix_parent)
        return True

    def _delete_fixup(self, tx: Tx, x: TObj, p: TObj) -> Generator:
        while True:
            root = yield from tx.read(self.root_ptr)
            if x is root:
                break
            if x is not self.nil:
                xv = yield from self._get(tx, x)
                if xv.red:
                    break
            pv = yield from self._get(tx, p)
            if x is pv.left:
                w = pv.right
                wv = yield from self._get(tx, w)
                if wv.red:
                    yield from self._update(tx, w, red=False)
                    yield from self._update(tx, p, red=True)
                    yield from self._rotate_left(tx, p)
                    pv = yield from self._get(tx, p)
                    w = pv.right
                    wv = yield from self._get(tx, w)
                wl = yield from self._get(tx, wv.left)
                wr = yield from self._get(tx, wv.right)
                if not wl.red and not wr.red:
                    yield from self._update(tx, w, red=True)
                    x = p
                    xv = yield from self._get(tx, x)
                    p = xv.parent
                else:
                    if not wr.red:
                        yield from self._update(tx, wv.left, red=False)
                        yield from self._update(tx, w, red=True)
                        yield from self._rotate_right(tx, w)
                        pv = yield from self._get(tx, p)
                        w = pv.right
                        wv = yield from self._get(tx, w)
                    pv = yield from self._get(tx, p)
                    yield from self._update(tx, w, red=pv.red)
                    yield from self._update(tx, p, red=False)
                    wv = yield from self._get(tx, w)
                    if wv.right is not self.nil:
                        yield from self._update(tx, wv.right, red=False)
                    yield from self._rotate_left(tx, p)
                    x = yield from tx.read(self.root_ptr)
                    p = self.nil
            else:
                w = pv.left
                wv = yield from self._get(tx, w)
                if wv.red:
                    yield from self._update(tx, w, red=False)
                    yield from self._update(tx, p, red=True)
                    yield from self._rotate_right(tx, p)
                    pv = yield from self._get(tx, p)
                    w = pv.left
                    wv = yield from self._get(tx, w)
                wl = yield from self._get(tx, wv.left)
                wr = yield from self._get(tx, wv.right)
                if not wl.red and not wr.red:
                    yield from self._update(tx, w, red=True)
                    x = p
                    xv = yield from self._get(tx, x)
                    p = xv.parent
                else:
                    if not wl.red:
                        yield from self._update(tx, wv.right, red=False)
                        yield from self._update(tx, w, red=True)
                        yield from self._rotate_left(tx, w)
                        pv = yield from self._get(tx, p)
                        w = pv.left
                        wv = yield from self._get(tx, w)
                    pv = yield from self._get(tx, p)
                    yield from self._update(tx, w, red=pv.red)
                    yield from self._update(tx, p, red=False)
                    wv = yield from self._get(tx, w)
                    if wv.left is not self.nil:
                        yield from self._update(tx, wv.left, red=False)
                    yield from self._rotate_right(tx, p)
                    x = yield from tx.read(self.root_ptr)
                    p = self.nil
        if x is not self.nil:
            xv = yield from self._get(tx, x)
            if xv.red:
                yield from self._update(tx, x, red=False)
