"""Transactional hash table (integer set) with per-bucket granularity.

Unlike the RB-tree and skip list there is no single entry point — the
bucket array is static — so commits of different keys mostly touch
disjoint objects.  This is the paper's "hash-table does not present such
pathology" case (Figure 12), where the LCU's speedup comes only from
faster lock handling, not from removing a root hotspot.

Bucket value: a sorted tuple of keys.
"""

from __future__ import annotations

from typing import Generator, List

from repro.stm.core import ObjectSTM, TObj, Tx


class HashTable:
    """Fixed-bucket hash set with transactional operations."""

    def __init__(self, stm: ObjectSTM, buckets: int = 64) -> None:
        if buckets <= 0:
            raise ValueError("need at least one bucket")
        self.stm = stm
        self.buckets: List[TObj] = [stm.alloc(()) for _ in range(buckets)]

    def _bucket(self, key: int) -> TObj:
        return self.buckets[hash(key) % len(self.buckets)]

    def contains(self, tx: Tx, key: int) -> Generator:
        keys = yield from tx.read(self._bucket(key))
        return key in keys

    def insert(self, tx: Tx, key: int) -> Generator:
        """Insert ``key``; returns False if already present."""
        b = self._bucket(key)
        keys = yield from tx.read(b)
        if key in keys:
            return False
        yield from tx.write(b, tuple(sorted(keys + (key,))))
        return True

    def remove(self, tx: Tx, key: int) -> Generator:
        """Remove ``key``; returns False if absent."""
        b = self._bucket(key)
        keys = yield from tx.read(b)
        if key not in keys:
            return False
        yield from tx.write(b, tuple(k for k in keys if k != key))
        return True

    def snapshot_keys(self, tx: Tx) -> Generator:
        out: List[int] = []
        for b in self.buckets:
            keys = yield from tx.read(b)
            out.extend(keys)
        return sorted(out)
