"""Transactional data structures used by the STM benchmarks."""

from repro.stm.structures.hashtable import HashTable
from repro.stm.structures.rbtree import RBTree
from repro.stm.structures.skiplist import SkipList

__all__ = ["HashTable", "RBTree", "SkipList"]
