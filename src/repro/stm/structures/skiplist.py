"""Transactional skip list (integer set).

Like the RB-tree, every traversal begins at the head tower, making the
head the reader-locking hotspot under visible readers.  Node levels are
drawn deterministically from a hash of the key so runs are reproducible.

Node value: ``(key, nexts)`` where ``nexts`` is a tuple of successor
TObjs (or None for tail), one per level.
"""

from __future__ import annotations

import hashlib
from typing import Generator, List, Optional

from repro.stm.core import ObjectSTM, TObj, Tx

MAX_LEVEL = 12


def _level_of(key: int, max_level: int = MAX_LEVEL) -> int:
    """Deterministic pseudo-random tower height for ``key`` (p = 1/2)."""
    h = int.from_bytes(
        hashlib.blake2b(str(key).encode(), digest_size=8).digest(), "big"
    )
    level = 1
    while h & 1 and level < max_level:
        level += 1
        h >>= 1
    return level


class SkipList:
    """Skip-list set with transactional operations."""

    def __init__(self, stm: ObjectSTM) -> None:
        self.stm = stm
        # head holds no key; its tower spans every level
        self.head = stm.alloc((None, (None,) * MAX_LEVEL))

    # ------------------------------------------------------------------ #

    def _find_preds(self, tx: Tx, key: int) -> Generator:
        """Return (preds, found): predecessor node per level and whether
        the key's node was seen at the bottom level."""
        preds: List[TObj] = [self.head] * MAX_LEVEL
        node = self.head
        value = yield from tx.read(node)
        for lvl in range(MAX_LEVEL - 1, -1, -1):
            nxt = value[1][lvl]
            while nxt is not None:
                nv = yield from tx.read(nxt)
                if nv[0] >= key:
                    break
                node, value = nxt, nv
                nxt = value[1][lvl]
            preds[lvl] = node
        # at bottom level: check the successor
        bottom_next = value[1][0]
        found = False
        if bottom_next is not None:
            nv = yield from tx.read(bottom_next)
            found = nv[0] == key
        return preds, found, bottom_next

    def contains(self, tx: Tx, key: int) -> Generator:
        _preds, found, _nxt = yield from self._find_preds(tx, key)
        return found

    def insert(self, tx: Tx, key: int) -> Generator:
        """Insert ``key``; returns False if already present."""
        preds, found, succ = yield from self._find_preds(tx, key)
        if found:
            return False
        level = _level_of(key)
        # build the new node's next pointers from the predecessors
        nexts: List[Optional[TObj]] = []
        for lvl in range(level):
            pv = yield from tx.read(preds[lvl])
            nexts.append(pv[1][lvl])
        node = tx.read_new((key, tuple(nexts) + (None,) * (MAX_LEVEL - level)))
        for lvl in range(level):
            pv = yield from tx.read(preds[lvl])
            new_nexts = list(pv[1])
            new_nexts[lvl] = node
            yield from tx.write(preds[lvl], (pv[0], tuple(new_nexts)))
        return True

    def remove(self, tx: Tx, key: int) -> Generator:
        """Remove ``key``; returns False if absent."""
        preds, found, target = yield from self._find_preds(tx, key)
        if not found or target is None:
            return False
        tv = yield from tx.read(target)
        level = _level_of(key)
        for lvl in range(level):
            pv = yield from tx.read(preds[lvl])
            if pv[1][lvl] is not target:
                continue  # tower shorter than expected at this level
            new_nexts = list(pv[1])
            new_nexts[lvl] = tv[1][lvl]
            yield from tx.write(preds[lvl], (pv[0], tuple(new_nexts)))
        return True

    def snapshot_keys(self, tx: Tx) -> Generator:
        """Bottom-level key walk (test helper)."""
        out = []
        v = yield from tx.read(self.head)
        node = v[1][0]
        while node is not None:
            nv = yield from tx.read(node)
            out.append(nv[0])
            node = nv[1][0]
        return out
