"""Object-based STM (OSTM-style) with commit-time reader-writer locking."""

from repro.stm.core import AbortTx, ObjectSTM, StmStats, TObj, TooManyRetries, Tx

__all__ = ["AbortTx", "ObjectSTM", "StmStats", "TObj", "TooManyRetries", "Tx"]
