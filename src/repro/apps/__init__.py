"""Application workload kernels (Fluidanimate / Cholesky / Radiosity)."""

from repro.apps.base import AppResult, all_apps, run_app
from repro.apps.cholesky import Cholesky
from repro.apps.fluidanimate import Fluidanimate
from repro.apps.radiosity import Radiosity

__all__ = [
    "AppResult", "all_apps", "run_app",
    "Cholesky", "Fluidanimate", "Radiosity",
]
