"""Application workload kernels and their runner (paper Section IV-C).

Each kernel reproduces the *locking pattern* of one Parsec/Splash
application the paper measures — the property Figure 13's result depends
on — with synthetic compute standing in for the physics/maths:

* :mod:`repro.apps.fluidanimate` — fine-grain per-cell locks, neighbour
  updates, boundary contention (lock-intensive, benefits from fast
  transfers).
* :mod:`repro.apps.cholesky` — task-pool factorization whose tasks dwarf
  the locking cost (insensitive to the lock model).
* :mod:`repro.apps.radiosity` — per-thread work queues with rare
  stealing: lock accesses are overwhelmingly thread-private, which favors
  coherence-cached software locks ("implicit biasing").

Kernels are registered by name; :func:`run_app` executes one kernel with
any registered lock algorithm and returns wall cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Generator, List

from repro.cpu.machine import Machine
from repro.cpu.os_sched import OS, SimThread
from repro.locks.base import LockAlgorithm, get_algorithm
from repro.obs.instrument import attach_machine_metrics, finish_run
from repro.params import MachineConfig
from repro.sim.stats import Accumulator


@dataclasses.dataclass
class AppResult:
    app: str
    lock: str
    model: str
    threads: int
    elapsed_mean: float
    elapsed_ci95: float
    runs: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.app}/{self.lock}: {self.elapsed_mean:.0f} "
            f"± {self.elapsed_ci95:.0f} cycles"
        )


class AppKernel:
    """One application workload: builds shared state, provides workers."""

    name = "abstract"
    default_threads = 16

    def __init__(self, machine: Machine, algo: LockAlgorithm,
                 threads: int, seed: int) -> None:
        self.machine = machine
        self.algo = algo
        self.threads = threads
        self.seed = seed

    def worker(self, thread: SimThread, index: int) -> Generator:
        raise NotImplementedError


_APPS: Dict[str, type] = {}


def register_app(cls):
    _APPS[cls.name] = cls
    return cls


def all_apps() -> Dict[str, type]:
    return dict(_APPS)


def run_app(
    config: MachineConfig,
    app_name: str,
    lock_name: str,
    threads: int = 0,
    seeds: List[int] = (1, 2, 3),
    max_cycles: int = 20_000_000_000,
    registry=None,
    tracer=None,
    sample_interval: int = 0,
    host_profiler=None,
    fairness=None,
) -> AppResult:
    """Run one app kernel under one lock model, averaged over seeds.

    ``registry`` accumulates machine counters across every seed;
    ``tracer`` records message spans for the *first* seed only (one
    coherent timeline beats three overlaid ones); ``host_profiler``
    accumulates host-time attribution across *all* seeds (it re-attaches
    to each seed's fresh simulator); ``fairness`` (a
    :class:`repro.obs.fairness.FairnessObservatory`) observes the
    *first* seed only — arrival order is only meaningful within one
    machine, and each seed allocates fresh (colliding) lock
    addresses."""
    try:
        app_cls = _APPS[app_name]
    except KeyError:
        raise KeyError(
            f"unknown app {app_name!r}; known: {sorted(_APPS)}"
        ) from None
    threads = threads or app_cls.default_threads
    acc = Accumulator()
    for run_idx, seed in enumerate(seeds):
        machine = Machine(config)
        algo = get_algorithm(lock_name)(machine)
        app = app_cls(machine, algo, threads, seed)
        os_ = OS(machine)
        if registry is not None:
            attach_machine_metrics(machine, registry, sample_interval)
        run_tracer = tracer if run_idx == 0 else None
        if run_tracer is not None:
            run_tracer.attach(machine)
        run_fairness = fairness if run_idx == 0 else None
        if run_fairness is not None:
            # after the tracer: its flight-recorder ring wraps net.send
            # on top and finish_run unwinds LIFO
            run_fairness.attach_machine(machine)
            run_fairness.attach_algorithm(algo)
            if registry is not None:
                run_fairness.attach_registry(registry)
        if host_profiler is not None:
            host_profiler.attach(machine.sim)
        for i in range(threads):
            os_.spawn(
                lambda t, i=i: app.worker(t, i), name=f"{app_name}-{i}"
            )
        elapsed = os_.run_all(max_cycles=max_cycles)
        acc.add(elapsed)
        finish_run(machine, registry, run_tracer,
                   host_profiler=host_profiler, fairness=run_fairness)
    return AppResult(
        app=app_name,
        lock=lock_name,
        model=config.name,
        threads=threads,
        elapsed_mean=acc.mean,
        elapsed_ci95=acc.confidence95(),
        runs=acc.n,
    )
