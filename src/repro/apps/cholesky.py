"""Cholesky workload kernel: task-pool factorization, compute-bound.

The Splash Cholesky factorization spends its time in large numerical
tasks pulled from a shared pool; lock operations are rare relative to
task compute, so the lock implementation barely moves the bottom line —
the paper's Figure 13 shows all three systems within the error bars.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.cpu import ops
from repro.apps.base import AppKernel, register_app


@register_app
class Cholesky(AppKernel):
    name = "cholesky"
    default_threads = 16

    TASKS = 160
    TASK_COMPUTE = (10_000, 22_000)  # cycles per numeric task
    SPAWN_PROB = 0.25                # tasks that enqueue a follow-up task

    def __init__(self, machine, algo, threads, seed) -> None:
        super().__init__(machine, algo, threads, seed)
        self.queue_lock = algo.make_lock()
        self.queue_len = machine.alloc.alloc_line()
        machine.mem.poke(self.queue_len, self.TASKS)

    def worker(self, thread, index: int) -> Generator:
        rng = random.Random(self.seed * 887 + index)
        algo = self.algo
        while True:
            yield from algo.acquire(thread, self.queue_lock, True)
            n = yield ops.Load(self.queue_len)
            if n > 0:
                yield ops.Store(self.queue_len, n - 1)
            yield from algo.release(thread, self.queue_lock, True)
            if n <= 0:
                return
            # the numeric task itself (dwarfs the locking)
            yield ops.Compute(rng.randint(*self.TASK_COMPUTE))
            if rng.random() < self.SPAWN_PROB:
                yield from algo.acquire(thread, self.queue_lock, True)
                cur = yield ops.Load(self.queue_len)
                yield ops.Store(self.queue_len, cur + 1)
                yield from algo.release(thread, self.queue_lock, True)
