"""Radiosity workload kernel: per-thread task queues with rare stealing.

The Splash radiosity app keeps a private task queue per thread, each
protected by a lock.  Almost every lock access is a thread re-acquiring
its *own* queue's lock; only when a thread runs dry does it touch remote
queues to steal work.  A software lock's line stays in the owner's L1
("implicit biasing"), so each acquire costs an L1 hit — while the base
LCU pays LRT round trips for every acquire/release.  This is the one
workload where the paper's Figure 13 shows the LCU *losing* to software
locks, motivating the Free Lock Table (run with ``flt_entries > 0`` to
see the bias restored — the FLT ablation bench does exactly that).
"""

from __future__ import annotations

import random
from typing import Generator

from repro.cpu import ops
from repro.apps.base import AppKernel, register_app


@register_app
class Radiosity(AppKernel):
    name = "radiosity"
    default_threads = 16

    TASKS_PER_THREAD = 60
    TASK_COMPUTE = (80, 220)    # small tasks: lock overhead is visible
    STEAL_BATCH = 4

    def __init__(self, machine, algo, threads, seed) -> None:
        super().__init__(machine, algo, threads, seed)
        self.queue_locks = [algo.make_lock() for _ in range(threads)]
        self.queue_lens = [
            machine.alloc.alloc_line() for _ in range(threads)
        ]
        for q in self.queue_lens:
            machine.mem.poke(q, self.TASKS_PER_THREAD)

    def worker(self, thread, index: int) -> Generator:
        rng = random.Random(self.seed * 431 + index)
        algo = self.algo
        my_lock = self.queue_locks[index]
        my_len = self.queue_lens[index]

        while True:
            # fast path: pop from the private queue (the biased pattern)
            yield from algo.acquire(thread, my_lock, True)
            n = yield ops.Load(my_len)
            if n > 0:
                yield ops.Store(my_len, n - 1)
            yield from algo.release(thread, my_lock, True)
            if n > 0:
                yield ops.Compute(rng.randint(*self.TASK_COMPUTE))
                continue
            # dry: try to steal a batch from one random victim
            stolen = 0
            victim = rng.randrange(self.threads)
            if victim != index:
                yield from algo.acquire(
                    thread, self.queue_locks[victim], True
                )
                vn = yield ops.Load(self.queue_lens[victim])
                stolen = min(self.STEAL_BATCH, vn)
                if stolen:
                    yield ops.Store(self.queue_lens[victim], vn - stolen)
                yield from algo.release(
                    thread, self.queue_locks[victim], True
                )
            if stolen == 0:
                # one failed steal round ends the thread (load imbalance
                # tail is not the point of the kernel)
                return
            yield from algo.acquire(thread, my_lock, True)
            cur = yield ops.Load(my_len)
            yield ops.Store(my_len, cur + stolen)
            yield from algo.release(thread, my_lock, True)
