"""Fluidanimate workload kernel: per-cell fine-grain neighbour updates.

The Parsec fluid simulation partitions a cell grid among threads; each
timestep every thread updates values in its own cells *and* neighbouring
cells, locking the touched cell — so cells on partition boundaries are
contended by adjacent threads every frame.  Locking is frequent and the
critical sections are tiny, which is why Figure 13 shows the largest
hardware-lock benefit here (+7.4% for the LCU).
"""

from __future__ import annotations

import random
from typing import Generator

from repro.cpu import ops
from repro.apps.base import AppKernel, register_app


@register_app
class Fluidanimate(AppKernel):
    name = "fluidanimate"
    default_threads = 32

    GRID = 16           # GRID x GRID cells
    FRAMES = 4
    CS_COMPUTE = 25     # cycles per cell-value update
    BETWEEN = 40        # non-critical compute per cell visit

    def __init__(self, machine, algo, threads, seed) -> None:
        super().__init__(machine, algo, threads, seed)
        n = self.GRID * self.GRID
        self.cell_locks = [algo.make_lock() for _ in range(n)]
        self.cell_values = [machine.alloc.alloc_line() for _ in range(n)]

    def _cell(self, x: int, y: int) -> int:
        return y * self.GRID + x

    def worker(self, thread, index: int) -> Generator:
        # stripe partitioning: thread owns rows [y0, y1)
        rows = self.GRID
        per = max(1, rows // self.threads)
        y0 = (index * per) % rows
        y1 = min(rows, y0 + per)
        rng = random.Random(self.seed * 613 + index)
        algo = self.algo

        for _frame in range(self.FRAMES):
            for y in range(y0, y1):
                for x in range(self.GRID):
                    # update own cell and one neighbour (often across the
                    # partition boundary for edge rows)
                    targets = [self._cell(x, y)]
                    ny = y + rng.choice((-1, 1))
                    if 0 <= ny < rows:
                        targets.append(self._cell(x, ny))
                    for c in sorted(targets):
                        yield from algo.acquire(thread, self.cell_locks[c], True)
                        v = yield ops.Load(self.cell_values[c])
                        yield ops.Compute(self.CS_COMPUTE)
                        yield ops.Store(self.cell_values[c], v + 1)
                        yield from algo.release(
                            thread, self.cell_locks[c], True
                        )
                    yield ops.Compute(self.BETWEEN)
