"""Behavioral model of the Synchronization State Buffer (SSB).

The SSB (Zhu et al., ISCA'07) keeps fine-grain lock state in a dedicated
table at the shared-L2 / memory controller.  The properties the paper
contrasts with the LCU:

* **All operations are remote** — each acquire attempt and each release is
  a round trip to the home controller; failed attempts are retried
  remotely, so waiting threads keep injecting messages (this is what
  saturates the Model B inter-chip links in Figure 9b).
* **No requestor queue** — transfers cost a full retry round trip instead
  of a direct LCU-to-LCU grant (the ~30% transfer-time gap of Figure 9a).
* **Reader preference, no fairness** — readers join an active read run
  freely, which raises read throughput (Figure 9a's high-reader ratios)
  but can starve writers; we expose writer-wait statistics so the
  fairness benches can quantify it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.net.network import Endpoint, Network
from repro.params import MachineConfig
from repro.sim.engine import Server, Simulator


class _SsbEntry:
    __slots__ = ("write", "owner_tid", "reader_cnt")

    def __init__(self, write: bool, owner_tid: Optional[int]) -> None:
        self.write = write
        self.owner_tid = owner_tid
        self.reader_cnt = 0 if write else 1


class SSB:
    """All SSB banks of the machine (one per memory controller)."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        network: Network,
        entries_per_bank: int = 512,
    ) -> None:
        self._sim = sim
        self._config = config
        self._net = network
        self._entries_per_bank = entries_per_bank
        self._banks: Dict[int, Dict[int, _SsbEntry]] = {
            j: {} for j in range(config.num_lrts)
        }
        self._servers = [
            Server(sim, f"ssb{j}") for j in range(config.num_lrts)
        ]
        for j in range(config.num_lrts):
            network.register(("ssb", j), self._on_message)
        self.stats = {
            "attempts": 0, "failures": 0, "acquires": 0, "releases": 0,
            "table_full": 0,
        }
        #: optional passive probe ``fn(event, addr, tid, write)`` with
        #: event in {"acq_ok", "acq_fail", "release"}, fired at the home
        #: bank as each operation resolves.  Same zero-cost contract as
        #: the LCU/LRT probes: a single None-check on a hot path, no
        #: simulator events, no behavioural effect.  The fairness
        #: observatory uses it to attribute SSB retry storms per lock.
        self.probe = None

    @property
    def servers(self):
        """Per-bank pipeline servers, for the telemetry layer."""
        return list(self._servers)

    def _home(self, addr: int) -> int:
        return (addr // self._config.line_size) % self._config.num_lrts

    # ------------------------------------------------------------------ #
    # core-side interface (invoked by the executor)

    def acquire(
        self, core: int, tid: int, addr: int, write: bool,
        done: Callable[[bool], None],
    ) -> None:
        """Remote acquire attempt; ``done(success)`` after the round trip."""
        self._op(core, ("acq", tid, addr, write, done))

    def release(
        self, core: int, tid: int, addr: int, write: bool,
        done: Callable[[bool], None],
    ) -> None:
        """Remote release; ``done(True)`` after the round trip."""
        self._op(core, ("rel", tid, addr, write, done))

    def _op(self, core: int, payload: tuple) -> None:
        home = self._home(payload[2])
        self._net.send(
            ("core", core), ("ssb", home), ("ssb", core, payload)
        )

    # ------------------------------------------------------------------ #
    # home-side processing

    def _on_message(self, _src: Endpoint, wrapped: tuple) -> None:
        _tag, core, payload = wrapped
        op, tid, addr, write, done = payload
        home = self._home(addr)
        self._servers[home].request(
            self._config.lrt_latency,
            lambda: self._process(home, core, op, tid, addr, write, done),
        )

    def _process(
        self, home: int, core: int, op: str, tid: int, addr: int,
        write: bool, done: Callable[[bool], None],
    ) -> None:
        bank = self._banks[home]
        if op == "acq":
            self.stats["attempts"] += 1
            result = self._try_acquire(bank, tid, addr, write)
            if result:
                self.stats["acquires"] += 1
            else:
                self.stats["failures"] += 1
            if self.probe is not None:
                self.probe("acq_ok" if result else "acq_fail",
                           addr, tid, write)
        else:
            result = self._do_release(bank, tid, addr, write)
            self.stats["releases"] += 1
            if self.probe is not None:
                self.probe("release", addr, tid, write)
        # reply round trip back to the requesting core
        self._net.send(
            ("ssb", home), ("core", core), ("ssb-reply",),
            on_deliver=lambda: done(result),
        )

    def _try_acquire(
        self, bank: Dict[int, _SsbEntry], tid: int, addr: int, write: bool
    ) -> bool:
        e = bank.get(addr)
        if e is None:
            if len(bank) >= self._entries_per_bank:
                self.stats["table_full"] += 1
                return False
            bank[addr] = _SsbEntry(write, tid if write else None)
            return True
        if write:
            return False
        if e.write:
            return False
        # Reader preference: join the active read run unconditionally —
        # this is the unfairness the paper calls out.
        e.reader_cnt += 1
        return True

    def _do_release(
        self, bank: Dict[int, _SsbEntry], tid: int, addr: int, write: bool
    ) -> bool:
        e = bank.get(addr)
        if e is None:
            raise RuntimeError(f"SSB release of free lock {addr:#x}")
        if write:
            if not e.write:
                raise RuntimeError("SSB write release of read lock")
            del bank[addr]
        else:
            e.reader_cnt -= 1
            if e.reader_cnt <= 0:
                del bank[addr]
        return True
