"""Synchronization State Buffer baseline (Zhu et al., ISCA'07)."""

from repro.ssb.ssb import SSB

__all__ = ["SSB"]
