"""repro — behavioral reproduction of *Architectural Support for Fair
Reader-Writer Locking* (Vallejo et al., MICRO 2010).

The package provides:

* :mod:`repro.lcu` — the paper's Lock Control Unit / Lock Reservation
  Table fair reader-writer locking architecture;
* :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.mem`, :mod:`repro.cpu`
  — the behavioral multiprocessor simulation substrate (Models A and B);
* :mod:`repro.locks` — software lock baselines (TAS, TATAS, ticket, MCS,
  MRSW, Krieger RW, Posix-mutex model);
* :mod:`repro.ssb` — the Synchronization State Buffer hardware baseline;
* :mod:`repro.stm` — an object-based STM (sw-only / LCU / SSB / Fraser
  variants) with transactional RB-tree, skip list and hash table;
* :mod:`repro.apps` — Fluidanimate / Cholesky / Radiosity workload models;
* :mod:`repro.harness` — drivers that regenerate every table and figure
  of the paper's evaluation (see EXPERIMENTS.md).

Quickstart::

    from repro import Machine, model_a, OS
    from repro.lcu import api
    from repro.cpu import ops

    m = Machine(model_a())
    os_ = OS(m)
    lock_addr = m.alloc.alloc_line()

    def worker(thread):
        for _ in range(10):
            yield from api.lock(lock_addr, write=True)
            yield ops.Compute(50)          # critical section
            yield from api.unlock(lock_addr, write=True)

    for _ in range(4):
        os_.spawn(worker)
    os_.run_all()
    print("finished at cycle", m.sim.now)
"""

from repro.cpu.machine import Machine
from repro.cpu.os_sched import OS, SimThread
from repro.params import MachineConfig, model_a, model_b, small_test_model

__version__ = "1.0.0"

__all__ = [
    "Machine", "OS", "SimThread",
    "MachineConfig", "model_a", "model_b", "small_test_model",
    "__version__",
]
