"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``      — print the paper's Figure 1 / Figure 8 tables.
* ``microbench``  — the single-lock critical-section benchmark.
* ``stm``         — the STM data-structure benchmark.
* ``app``         — one application kernel under one lock model.
* ``figure``      — regenerate a paper figure (fig9a .. fig13).
* ``locks``       — list registered lock algorithms.
* ``report``      — validate and summarize a run-report JSON file.
* ``check``       — conformance/invariant checking: fuzz one lock
  algorithm (or ``--all``) under the invariant monitor and reference
  oracle; replay and minimize JSON reproducers.  Exits 1 on violation.
* ``profile``     — run the contention profiler on a microbenchmark:
  per-lock acquire-latency decomposition, queue-depth stats, critical
  path, folded-stack / Perfetto export.
* ``diff``        — structurally diff two run reports; with
  ``--fail-on-regression``, exit 1 when a known-direction quantity
  moved past ``--threshold`` in the wrong direction.  With ``--host``,
  diff two bench-trajectory records (or two ``--host-prof`` run
  reports) instead: host throughput, attribution and event-queue
  counters, under a noise-aware threshold.
* ``bench``       — the host-performance observatory: run the pinned
  engine benchmark matrix best-of-N, attribute host time to
  subsystems, and append one record to the ``BENCH_engine.json``
  trajectory.
* ``sweep``       — shard a microbench matrix (cells x seeds) across
  worker processes and merge the per-shard telemetry into a single
  RunReport, byte-identical to the serial run (``--verify-serial``
  proves it).
* ``fairness``    — the fairness scorecard: run the pinned
  lock x model matrix under the fairness observatory and report the
  Jain index, worst arrival-order overtake, writer share and p999
  wait per cell; appends one record to ``BENCH_fairness.json``.
  ``repro diff`` on two fairness trajectories gates on fairness
  regressions (a Jain drop, a fatter overtake).

The benchmark commands accept ``--metrics-out FILE`` (machine-readable
run report), ``--trace-out FILE`` (Chrome trace-event JSON, loadable in
Perfetto) and ``--sample-interval N`` (gauge time-series period in
cycles); ``microbench`` and ``figure`` also take ``--profile`` to embed
a profile section in the run report, ``microbench``/``stm``/``app``
take ``--host-prof`` to charge host nanoseconds to subsystems (the
``host`` section of RunReport v3), and ``microbench``/``figure``/
``app`` take ``--fairness`` to attach the fairness observatory (the
``fairness`` section of RunReport v4).  See README "Observability",
"Profiling & regression gating", "Host performance" and "Fairness
observatory".
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.apps.base import all_apps, run_app
from repro.harness import figures
from repro.harness.bench import (
    DEFAULT_ITERS,
    DEFAULT_LOCKS,
    DEFAULT_REPEATS,
    DEFAULT_THREADS,
    DEFAULT_WRITE_PCT,
    QUICK_CELL,
    QUICK_REPEATS,
)
from repro.harness.microbench import run_microbench
from repro.harness.stm_bench import STRUCTURES, run_stm_bench
from repro.harness.tables import figure1_table, figure8_table
from repro.locks.base import all_algorithms
from repro.obs import (
    MetricsRegistry,
    ReportValidationError,
    SpanTracer,
    build_run_report,
    summarize_run_report,
    validate_run_report,
    write_run_report,
)
from repro.params import model_a, model_b
from repro.stm.core import ObjectSTM

_FIGURES = {
    "fig9a": lambda s, **kw: figures.figure9(
        "A", iters_per_thread=100 * s, **kw),
    "fig9b": lambda s, **kw: figures.figure9(
        "B", write_ratios=(100, 50), iters_per_thread=100 * s, **kw),
    "fig10a": lambda s, **kw: figures.figure10(
        "A", thread_counts=(8, 16, 32, 48),
        iters_per_thread=30 * s, quantum=20_000, **kw,
    ),
    "fig10b": lambda s, **kw: figures.figure10(
        "B", thread_counts=(4, 8, 16, 32), iters_per_thread=60 * s,
        locks=("lcu", "mcs", "mrsw", "tatas"), **kw,
    ),
    "fig11a": lambda s, **kw: figures.figure11(
        "A", txns_per_thread=40 * s, **kw),
    "fig11b": lambda s, **kw: figures.figure11(
        "B", thread_counts=(1, 4, 8, 16), txns_per_thread=30 * s, **kw,
    ),
    "fig12a": lambda s, **kw: figures.figure12(
        "A", sizes={"rb": 2_048 * s, "skip": 2_048 * s, "hash": 8_192 * s},
        txns_per_thread=30 * s, **kw,
    ),
    "fig12b": lambda s, **kw: figures.figure12(
        "B", sizes={"rb": 1_024 * s, "skip": 1_024 * s, "hash": 4_096 * s},
        txns_per_thread=25 * s, **kw,
    ),
    "fig13": lambda s, **kw: figures.figure13(
        seeds=tuple(range(1, 3 + s)), **kw),
}


#: figures whose runs go through run_microbench and therefore have
#: lock-phase probes the profiler can attach to
_PROFILABLE_FIGURES = {"fig9a", "fig9b", "fig10a", "fig10b"}


def _model(name: str):
    return model_a() if name.upper() == "A" else model_b()


# --------------------------------------------------------------------- #
# telemetry plumbing shared by the benchmark commands

def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write a machine-readable run report (JSON) here",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON (Perfetto-loadable) here",
    )
    parser.add_argument(
        "--sample-interval", type=int, default=0, metavar="CYCLES",
        help="sample gauge time series every N cycles (0 = off)",
    )


def _add_host_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host-prof", action="store_true",
        help="attribute *host* (wall-clock) nanoseconds to simulator "
             "subsystems; with --metrics-out, embeds a 'host' section "
             "in the run report, otherwise prints the summary",
    )


def _obs_setup(args):
    """Build (registry, tracer) from the telemetry flags; both None when
    the flags are absent, so instrumentation stays off."""
    registry = MetricsRegistry() if args.metrics_out else None
    tracer = SpanTracer() if args.trace_out else None
    return registry, tracer


def _profiler_setup(args):
    """A :class:`ContentionProfiler` when ``--profile`` was given."""
    if not getattr(args, "profile", False):
        return None
    from repro.obs.profile import ContentionProfiler

    return ContentionProfiler()


def _host_setup(args):
    """A :class:`HostProfiler` when ``--host-prof`` was given."""
    if not getattr(args, "host_prof", False):
        return None
    from repro.obs.host import HostProfiler

    return HostProfiler()


def _add_fairness_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fairness", action="store_true",
        help="attach the fairness observatory (overtake ledger, wait "
             "histograms, starvation watchdog); with --metrics-out, "
             "embeds a 'fairness' section in the run report, otherwise "
             "prints the per-lock digest",
    )


def _fairness_setup(args):
    """A :class:`FairnessObservatory` when ``--fairness`` was given."""
    if not getattr(args, "fairness", False):
        return None
    from repro.obs.fairness import FairnessObservatory

    return FairnessObservatory()


def _obs_emit(args, kind, config, result, registry, tracer,
              profiler=None, host=None, fairness=None) -> None:
    """Write the run report / trace files requested on the command line."""
    if registry is not None:
        results = (
            dataclasses.asdict(result)
            if dataclasses.is_dataclass(result) else result
        )
        report = build_run_report(
            kind, config, results, metrics=registry.to_dict(),
            profile=profiler.to_dict() if profiler is not None else None,
            host=host.to_dict() if host is not None else None,
            fairness=(fairness.to_dict() if fairness is not None
                      else None),
        )
        write_run_report(args.metrics_out, report)
        print(f"run report: {args.metrics_out}")
    else:
        if profiler is not None:
            print(profiler.summarize())
        if host is not None:
            print(host.summarize())
        if fairness is not None:
            from repro.obs.fairness import summarize_fairness
            print(summarize_fairness(fairness.to_dict()))
    if tracer is not None:
        tracer.write_chrome_trace(args.trace_out)
        print(f"chrome trace: {args.trace_out} "
              f"({len(tracer.spans)} spans)")


def cmd_tables(_args) -> int:
    print(figure1_table())
    print()
    print(figure8_table())
    return 0


def cmd_locks(_args) -> int:
    for name, cls in sorted(all_algorithms().items()):
        kind = "HW" if cls.hardware else "SW"
        rw = "RW" if cls.rw_support else "mutex"
        print(f"{name:8s} [{kind}, {rw}] {cls.__doc__.splitlines()[0] if cls.__doc__ else ''}")
    return 0


def cmd_microbench(args) -> int:
    config = _model(args.model)
    registry, tracer = _obs_setup(args)
    profiler = _profiler_setup(args)
    host = _host_setup(args)
    fairness = _fairness_setup(args)
    r = run_microbench(
        config, args.lock, args.threads, args.write_pct,
        iters_per_thread=args.iters,
        registry=registry, tracer=tracer,
        sample_interval=args.sample_interval,
        profiler=profiler, host_profiler=host, fairness=fairness,
    )
    print(r)
    print(f"  fairness={r.fairness:.3f} acquire latency mean="
          f"{r.acquire_latency_mean:.0f} hub util={r.hub_utilisation:.2f}")
    _obs_emit(
        args, "microbench",
        {
            "lock": args.lock, "model": args.model,
            "threads": args.threads, "write_pct": args.write_pct,
            "iters_per_thread": args.iters,
            "sample_interval": args.sample_interval,
            "machine": dataclasses.asdict(config),
        },
        r, registry, tracer, profiler, host, fairness,
    )
    return 0


def cmd_stm(args) -> int:
    config = _model(args.model)
    registry, tracer = _obs_setup(args)
    host = _host_setup(args)
    r = run_stm_bench(
        config, args.variant, args.structure,
        threads=args.threads, initial_size=args.size,
        txns_per_thread=args.txns,
        registry=registry, tracer=tracer,
        sample_interval=args.sample_interval,
        host_profiler=host,
    )
    print(r)
    _obs_emit(
        args, "stm",
        {
            "variant": args.variant, "structure": args.structure,
            "model": args.model, "threads": args.threads,
            "initial_size": args.size, "txns_per_thread": args.txns,
            "sample_interval": args.sample_interval,
            "machine": dataclasses.asdict(config),
        },
        r, registry, tracer, host=host,
    )
    return 0


def cmd_app(args) -> int:
    config = _model(args.model)
    registry, tracer = _obs_setup(args)
    host = _host_setup(args)
    fairness = _fairness_setup(args)
    r = run_app(config, args.name, args.lock,
                threads=args.threads, seeds=list(range(1, args.seeds + 1)),
                registry=registry, tracer=tracer,
                sample_interval=args.sample_interval,
                host_profiler=host, fairness=fairness)
    print(r)
    _obs_emit(
        args, "app",
        {
            "app": args.name, "lock": args.lock, "model": args.model,
            "threads": args.threads, "seeds": args.seeds,
            "sample_interval": args.sample_interval,
            "machine": dataclasses.asdict(config),
        },
        r, registry, tracer, host=host, fairness=fairness,
    )
    return 0


def cmd_figure(args) -> int:
    registry, tracer = _obs_setup(args)
    profiler = _profiler_setup(args)
    fairness = _fairness_setup(args)
    kwargs = dict(
        registry=registry, tracer=tracer,
        sample_interval=args.sample_interval,
    )
    if profiler is not None:
        if args.name not in _PROFILABLE_FIGURES:
            print(f"error: --profile supports only "
                  f"{sorted(_PROFILABLE_FIGURES)} (lock-level probes); "
                  f"{args.name} is an STM/app figure", file=sys.stderr)
            return 2
        kwargs["profiler"] = profiler
    if fairness is not None:
        if args.name not in _PROFILABLE_FIGURES:
            print(f"error: --fairness supports only "
                  f"{sorted(_PROFILABLE_FIGURES)} (lock observer "
                  f"events); {args.name} is an STM/app figure",
                  file=sys.stderr)
            return 2
        kwargs["fairness"] = fairness
    result = _FIGURES[args.name](args.scale, **kwargs)
    print(result.text)
    _obs_emit(
        args, "figure",
        {
            "figure": args.name, "scale": args.scale,
            "sample_interval": args.sample_interval,
        },
        {
            "figure": result.figure,
            "xs": result.xs,
            "series": result.series,
            "checks": result.checks,
        },
        registry, tracer, profiler, fairness=fairness,
    )
    if result.checks:
        ok = all(result.checks.values())
        print(f"shape checks [{'OK' if ok else 'MISMATCH'}]:",
              result.checks)
        return 0 if ok else 1
    return 0


def cmd_report(args) -> int:
    import json

    from repro.obs.host import (
        HostProfileError, is_trajectory, validate_trajectory,
    )

    try:
        with open(args.file) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    if is_trajectory(report):
        from repro.harness.bench import summarize_cell

        try:
            validate_trajectory(report)
        except HostProfileError as exc:
            print(f"invalid bench trajectory {args.file}: {exc}",
                  file=sys.stderr)
            return 1
        records = report["records"]
        print(f"bench trajectory: {len(records)} record(s)")
        if records:
            last = records[-1]
            env = last.get("env", {})
            print(f"latest record ({last.get('time_utc', '?')}"
                  + (f", label {last['label']!r}" if last.get("label")
                     else "")
                  + f"): python {env.get('python', '?')} on "
                  f"{env.get('machine', '?')}, "
                  f"{env.get('cpu_count', '?')} CPUs")
            from repro.obs.diff import is_fairness_record
            if is_fairness_record(last):
                from repro.harness.fairness_bench import scorecard_table
                print(scorecard_table(last.get("cells", [])))
            else:
                for cell in last.get("cells", []):
                    print("  " + summarize_cell(cell))
        return 0
    try:
        validate_run_report(report)
    except ReportValidationError as exc:
        print(f"invalid run report {args.file}:", file=sys.stderr)
        for err in exc.errors:
            print(f"  - {err}", file=sys.stderr)
        return 1
    print(summarize_run_report(report))
    return 0


def cmd_profile(args) -> int:
    from repro.obs.profile import ContentionProfiler

    if args.top <= 0:
        print("error: --top must be positive", file=sys.stderr)
        return 2
    config = _model(args.model)
    profiler = ContentionProfiler()
    registry = MetricsRegistry() if args.json_out else None
    r = run_microbench(
        config, args.lock, args.threads, args.write_pct,
        iters_per_thread=args.iters, cs_cycles=args.cs_cycles,
        seed=args.seed,
        registry=registry, profiler=profiler,
    )
    print(profiler.summarize(top=args.top))
    print()
    print(r)
    if args.folded_out:
        profiler.write_folded(args.folded_out)
        print(f"folded stacks: {args.folded_out}")
    if args.trace_out:
        profiler.write_chrome_trace(args.trace_out)
        print(f"chrome trace: {args.trace_out}")
    if args.json_out:
        report = build_run_report(
            "microbench",
            {
                "lock": args.lock, "model": args.model,
                "threads": args.threads, "write_pct": args.write_pct,
                "iters_per_thread": args.iters,
                "cs_cycles": args.cs_cycles, "seed": args.seed,
                "machine": dataclasses.asdict(config),
            },
            dataclasses.asdict(r),
            metrics=registry.to_dict(),
            profile=profiler.to_dict(top=args.top),
        )
        write_run_report(args.json_out, report)
        print(f"run report: {args.json_out}")
    return 0


def cmd_diff(args) -> int:
    import json

    from repro.obs.diff import diff_host_records, diff_run_reports
    from repro.obs.host import (
        HostProfileError, is_trajectory, latest_record, validate_trajectory,
    )

    threshold = args.threshold
    if threshold is None:
        # host wall-clock jitters where simulated cycles are exact:
        # the host gate defaults looser than the simulated-metrics gate
        threshold = 0.25 if args.host else 0.10
    if threshold < 0:
        print("error: --threshold must be >= 0", file=sys.stderr)
        return 2

    objs = []
    for path in (args.old, args.new):
        try:
            with open(path) as f:
                objs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    old_obj, new_obj = objs

    if args.host:
        if is_trajectory(old_obj) and is_trajectory(new_obj):
            try:
                validate_trajectory(old_obj)
                validate_trajectory(new_obj)
                # same file twice: compare the last two records, the
                # natural "did my engine PR help" invocation
                old_idx = (args.record - 1 if args.old == args.new
                           else args.record)
                old_rec = latest_record(old_obj, old_idx)
                new_rec = latest_record(new_obj, args.record)
            except HostProfileError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            d = diff_host_records(old_rec, new_rec, threshold=threshold)
        elif is_trajectory(old_obj) or is_trajectory(new_obj):
            print("error: --host needs two bench trajectories or two "
                  "run reports, not one of each", file=sys.stderr)
            return 2
        else:
            for path, rep in zip((args.old, args.new), objs):
                try:
                    validate_run_report(rep)
                except ReportValidationError as exc:
                    print(f"invalid run report {path}: {exc}",
                          file=sys.stderr)
                    return 2
                if "host" not in rep:
                    print(f"error: {path} has no 'host' section "
                          f"(re-run with --host-prof)", file=sys.stderr)
                    return 2
            d = diff_run_reports(old_obj, new_obj, threshold=threshold,
                                 include_host=True)
        env_mismatch = [m for m in d.config_mismatches
                        if m[0].startswith("env.")]
        if env_mismatch:
            print("warning: environment fingerprint mismatch — host "
                  "numbers compare machines, not code:", file=sys.stderr)
            for key, old_v, new_v in env_mismatch:
                print(f"  {key}: {old_v!r} -> {new_v!r}", file=sys.stderr)
    else:
        from repro.obs.diff import diff_fairness_records, is_fairness_record

        def _latest_fairness(obj):
            return is_trajectory(obj) and is_fairness_record(
                (obj.get("records") or [{}])[-1]
            )

        if _latest_fairness(old_obj) and _latest_fairness(new_obj):
            # two fairness trajectories (BENCH_fairness.json): compare
            # scorecard records — all simulated quantities, so the
            # default 10% gate applies without host-noise caveats
            try:
                validate_trajectory(old_obj)
                validate_trajectory(new_obj)
                old_idx = (args.record - 1 if args.old == args.new
                           else args.record)
                old_rec = latest_record(old_obj, old_idx)
                new_rec = latest_record(new_obj, args.record)
            except HostProfileError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            d = diff_fairness_records(old_rec, new_rec,
                                      threshold=threshold)
            print(d.summarize(top=args.top))
            if args.json_out:
                with open(args.json_out, "w") as f:
                    json.dump(d.to_dict(), f, indent=1, sort_keys=True)
                    f.write("\n")
                print(f"diff report: {args.json_out}")
            if d.has_regressions():
                if args.fail_on_regression:
                    print(
                        f"FAIL: {len(d.regressions)} fairness "
                        f"regression(s) beyond {threshold:.0%}",
                        file=sys.stderr,
                    )
                    return 1
                print(f"note: {len(d.regressions)} regression(s) found "
                      f"(pass --fail-on-regression to gate)")
            return 0
        reports = []
        for path, obj in zip((args.old, args.new), objs):
            if is_trajectory(obj):
                # a trajectory baseline (e.g. BENCH_telemetry.json)
                # stands in for the run report embedded in its latest
                # record's first reporting cell (bench --embed-report)
                try:
                    validate_trajectory(obj)
                    rec = latest_record(obj)
                except HostProfileError as exc:
                    print(f"error: {path}: {exc}", file=sys.stderr)
                    return 2
                obj = next(
                    (c["report"] for c in rec["cells"] if "report" in c),
                    None,
                )
                if obj is None:
                    print(f"error: {path}: trajectory embeds no run "
                          f"report (re-run bench with --embed-report, "
                          f"or diff it with --host)",
                          file=sys.stderr)
                    return 2
            try:
                validate_run_report(obj)
            except ReportValidationError as exc:
                print(f"invalid run report {path}: {exc}", file=sys.stderr)
                return 2
            reports.append(obj)
        d = diff_run_reports(reports[0], reports[1], threshold=threshold)
    print(d.summarize(top=args.top))
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(d.to_dict(), f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"diff report: {args.json_out}")
    if d.has_regressions():
        if args.fail_on_regression:
            print(
                f"FAIL: {len(d.regressions)} regression(s) beyond "
                f"{threshold:.0%}",
                file=sys.stderr,
            )
            return 1
        print(f"note: {len(d.regressions)} regression(s) found "
              f"(pass --fail-on-regression to gate)")
    return 0


def cmd_bench(args) -> int:
    from repro.harness.bench import (
        default_matrix, merged_folded, quick_matrix, run_bench,
        summarize_cell,
    )
    from repro.obs.host import append_record

    if args.quick:
        specs = quick_matrix(iters=args.iters)
        default_repeats = QUICK_REPEATS
    else:
        known = sorted(all_algorithms())
        locks = args.locks.split(",") if args.locks else None
        for lock in locks or []:
            if lock not in known:
                print(f"unknown lock {lock!r} (known: {', '.join(known)})",
                      file=sys.stderr)
                return 2
        models = args.models.split(",") if args.models else None
        threads = ([int(x) for x in args.threads.split(",")]
                   if args.threads else None)
        kwargs = {}
        if locks:
            kwargs["locks"] = locks
        if models:
            kwargs["models"] = models
        if threads:
            kwargs["threads"] = threads
        specs = default_matrix(
            write_pct=args.write_pct, iters=args.iters, seed=args.seed,
            **kwargs,
        )
        default_repeats = DEFAULT_REPEATS
    repeats = (args.repeats if args.repeats is not None
               else default_repeats)
    if repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2

    print(f"bench: {len(specs)} cell(s), best of {repeats}"
          + (" (host attribution off)" if args.no_host_prof else ""))
    record, profilers = run_bench(
        specs, repeats=repeats, host_prof=not args.no_host_prof,
        profile=args.profile, sample_interval=args.sample_interval,
        embed_report=args.embed_report, label=args.label, note=args.note,
        progress=lambda cell: print(summarize_cell(cell)),
    )
    if args.folded_out:
        if profilers:
            with open(args.folded_out, "w") as f:
                f.write(merged_folded(profilers))
            print(f"host folded stacks: {args.folded_out}")
        else:
            print("note: --folded-out ignored with --no-host-prof")
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(record, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"bench record: {args.json_out}")
    if args.no_append:
        print(f"(trajectory {args.out} not touched: --no-append)")
    else:
        trajectory = append_record(args.out, record)
        print(f"trajectory: {args.out} "
              f"({len(trajectory['records'])} record(s))")
    return 0


def cmd_fairness(args) -> int:
    from repro.harness.fairness_bench import (
        quick_matrix, run_fairness_bench, scorecard_matrix,
        scorecard_table,
    )
    from repro.obs.diff import diff_fairness_records
    from repro.obs.host import append_record, load_trajectory

    known = sorted(all_algorithms())
    locks = args.locks.split(",") if args.locks else None
    for lock in locks or []:
        if lock not in known:
            print(f"unknown lock {lock!r} (known: {', '.join(known)})",
                  file=sys.stderr)
            return 2
    models = args.models.split(",") if args.models else None
    kwargs = {}
    if locks:
        kwargs["locks"] = tuple(locks)
    if models:
        kwargs["models"] = tuple(models)
    if args.quick:
        # quick keeps the full lock x model coverage (the scorecard is
        # the point) and shrinks each cell instead
        specs = quick_matrix(
            write_pct=args.write_pct, seed=args.seed, **kwargs,
        )
    else:
        specs = scorecard_matrix(
            threads=args.threads, write_pct=args.write_pct,
            duration=args.duration, seed=args.seed, **kwargs,
        )

    print(f"fairness scorecard: {len(specs)} cell(s), "
          f"{specs[0]['threads']} threads, "
          f"{specs[0]['write_pct']}% writers (fixed roles), "
          f"{specs[0]['duration']} cycles")
    record, _sections = run_fairness_bench(
        specs, slo=args.slo, starvation_bound=args.starvation_bound,
        label=args.label, note=args.note,
        progress=lambda cell: print(
            f"  {cell['lock']:7s} model {cell['model']}: "
            f"jain={cell['jain']:.3f} max-ot={cell['max_overtake']} "
            f"w-share={cell['writer_share']:.3f}"
        ),
    )
    cells = record["cells"]
    print()
    print(scorecard_table(cells))
    not_passive = [f"{c['lock']}/{c['model']}" for c in cells
                   if not c["zero_overhead"]]
    if not_passive:
        print(f"WARNING: observatory changed simulated cycles in: "
              f"{', '.join(not_passive)}", file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(record, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"fairness record: {args.json_out}")

    baseline = None
    if args.fail_on_regression:
        # gate against the latest record already in the trajectory
        # (the one a labelled re-run would replace, or the previous run)
        records = load_trajectory(args.out).get("records") or []
        baseline = records[-1] if records else None
    if args.no_append:
        print(f"(trajectory {args.out} not touched: --no-append)")
    else:
        trajectory = append_record(args.out, record)
        print(f"trajectory: {args.out} "
              f"({len(trajectory['records'])} record(s))")
    if args.fail_on_regression and baseline is not None:
        d = diff_fairness_records(baseline, record,
                                  threshold=args.threshold)
        if d.has_regressions():
            print(d.summarize(top=10))
            print(f"FAIL: {len(d.regressions)} fairness regression(s) "
                  f"beyond {args.threshold:.0%}", file=sys.stderr)
            return 1
        print("no fairness regressions vs previous record")
    if not_passive:
        return 1
    return 0


def cmd_sweep(args) -> int:
    from repro.harness.bench import default_matrix
    from repro.harness.parallel import (
        default_workers, run_sweep, sweep_shards,
    )
    from repro.obs.report import write_run_report

    known = sorted(all_algorithms())
    locks = args.locks.split(",") if args.locks else None
    for lock in locks or []:
        if lock not in known:
            print(f"unknown lock {lock!r} (known: {', '.join(known)})",
                  file=sys.stderr)
            return 2
    models = args.models.split(",") if args.models else None
    threads = ([int(x) for x in args.threads.split(",")]
               if args.threads else None)
    kwargs = {}
    if locks:
        kwargs["locks"] = locks
    if models:
        kwargs["models"] = models
    if threads:
        kwargs["threads"] = threads
    specs = default_matrix(
        write_pct=args.write_pct, iters=args.iters, **kwargs,
    )
    seeds = [int(x) for x in args.seeds.split(",")]
    workers = args.workers if args.workers is not None else default_workers()
    shards = sweep_shards(specs, seeds)
    mode = "serial" if workers <= 1 else f"{min(workers, len(shards))} procs"
    print(f"sweep: {len(specs)} cell(s) x {len(seeds)} seed(s) = "
          f"{len(shards)} shard(s), {mode}")

    def progress(payload) -> None:
        r = payload["result"]
        print(f"  {r['lock']:7s} model {r['model']} t={r['threads']} "
              f"seed={payload['seed']}\t{r['cycles_per_cs']:.1f} cyc/CS "
              f"({r['total_cs']} CS in {r['elapsed']} cycles)")

    report = run_sweep(specs, seeds, workers=workers, progress=progress,
                       fairness=args.fairness)
    if args.verify_serial and workers >= 2:
        serial = run_sweep(specs, seeds, workers=0, fairness=args.fairness)
        a = json.dumps(report, sort_keys=True)
        b = json.dumps(serial, sort_keys=True)
        if a != b:
            print("FAIL: parallel report differs from serial reference",
                  file=sys.stderr)
            return 1
        print("verified: parallel report byte-identical to serial run")
    if args.out:
        write_run_report(args.out, report)
        print(f"sweep report: {args.out}")
    res = report["results"]
    print(f"merged: {res['shard_count']} shard(s), "
          f"{res['total_cs']} critical sections")
    return 0


def cmd_check(args) -> int:
    from repro.check.fuzz import (
        FuzzCase, fuzz_matrix, load_case, run_case, save_case, shrink,
    )

    tracer = SpanTracer() if args.trace_out else None

    def emit_trace() -> None:
        if tracer is not None:
            tracer.write_chrome_trace(args.trace_out)
            print(f"chrome trace: {args.trace_out} "
                  f"({len(tracer.spans)} spans)")

    def report_failure(outcome) -> None:
        print(outcome.summary())
        if args.minimize:
            small = shrink(outcome.case)
            path = args.save_repro or (
                f"check-repro-{small.case.algo}-{small.case.model}.json"
            )
            save_case(small, path, note=f"minimized from: "
                                        f"{outcome.case.describe()}")
            print(f"minimized reproducer: {path} "
                  f"({small.case.describe()})")
        elif args.save_repro:
            save_case(outcome, args.save_repro)
            print(f"reproducer: {args.save_repro}")

    if args.replay:
        outcome = run_case(load_case(args.replay), span_tracer=tracer)
        if outcome.ok:
            print(outcome.summary())
        else:
            report_failure(outcome)
        emit_trace()
        return 0 if outcome.ok else 1

    locks = sorted(all_algorithms()) if args.all else [args.lock]
    models = ["A", "B"] if args.model == "all" else [args.model]
    workers = args.workers or 0
    if tracer is not None and workers >= 2:
        print("note: --trace-out forces a serial run (spans cannot "
              "cross process boundaries)")
        workers = 0

    def shard_progress(shard) -> None:
        print(f"{shard['algo']:8s} model {shard['model']}: "
              f"{'FAIL' if shard['failing'] else 'pass'}  "
              f"({shard['runs']} runs, {shard['total_cs']} CS)")

    shards = fuzz_matrix(
        locks, models, runs=args.runs, seed=args.seed,
        workers=workers, progress=shard_progress, span_tracer=tracer,
    )
    failed = []
    for shard in shards:
        if shard["failing"]:
            failed.append((shard["algo"], shard["model"]))
            # replay the failing case in-process (deterministic) to
            # recover the full outcome for minimization/saving
            report_failure(run_case(FuzzCase.from_dict(shard["failing"][0])))
    emit_trace()
    if failed:
        print(f"{len(failed)} failing combination(s): {failed}")
        return 1
    return 0


def cmd_faults(args) -> int:
    from repro.faults.nemesis import (
        DEFAULT_ALGOS, DEFAULT_MODELS, run_matrix,
    )
    from repro.faults.plan import ALL_CLASSES

    if args.list_classes:
        from repro.faults.plan import (
            CRASH_CLASSES,
            GRAY_CLASSES,
            LCU_ONLY_CLASSES,
            MESSAGE_CLASSES,
            SCHED_CLASSES,
        )
        groups = [
            ("message (all algorithms)", MESSAGE_CLASSES),
            ("scheduler (all algorithms)", SCHED_CLASSES),
            ("crash-stop (all algorithms)", CRASH_CLASSES),
            ("gray failure (all algorithms)", GRAY_CLASSES),
            ("hardware pressure (LCU-backed locks only)", LCU_ONLY_CLASSES),
        ]
        for label, members in groups:
            print(f"{label}:")
            for cls in members:
                print(f"  {cls}")
        return 0

    algos = args.algos.split(",") if args.algos else list(DEFAULT_ALGOS)
    models = args.models.split(",") if args.models else list(DEFAULT_MODELS)
    classes = args.classes.split(",") if args.classes else None
    for cls in classes or []:
        if cls not in ALL_CLASSES:
            print(f"unknown fault class {cls!r} "
                  f"(known: {', '.join(ALL_CLASSES)})")
            return 2

    def progress(cell) -> None:
        mark = {"recovered": ".", "degraded": "~", "violated": "X"}
        detail = f"  [{cell.detail}]" if cell.detail else ""
        print(f"{mark[cell.outcome]} {cell.fault:9s} {cell.algo:7s} "
              f"model {cell.model}: {cell.outcome:9s} "
              f"inj={cell.injected:<4d} {cell.elapsed:>8d} cyc{detail}")

    result = run_matrix(
        algos=algos, models=models, classes=classes, seed=args.seed,
        threads=args.threads, iters=args.iters, horizon=args.horizon,
        progress=progress, workers=args.workers or 0,
        fencing=not args.no_fencing,
    )
    counts = result.counts
    print(f"\n{len(result.cells)} cells: "
          f"{counts['recovered']} recovered, "
          f"{counts['degraded']} degraded, "
          f"{counts['violated']} violated")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=1, sort_keys=True)
        print(f"nemesis report: {args.out}")
    if not result.ok:
        for cell in result.violated():
            print(f"VIOLATED {cell.fault}/{cell.algo}/model {cell.model}: "
                  f"{cell.detail}")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("tables").set_defaults(fn=cmd_tables)
    sub.add_parser("locks").set_defaults(fn=cmd_locks)

    mb = sub.add_parser("microbench")
    mb.add_argument("--lock", default="lcu",
                    choices=sorted(all_algorithms()))
    mb.add_argument("--model", default="A", choices=["A", "B"])
    mb.add_argument("--threads", type=int, default=16)
    mb.add_argument("--write-pct", type=int, default=100)
    mb.add_argument("--iters", type=int, default=150)
    _add_obs_flags(mb)
    mb.add_argument("--profile", action="store_true",
                    help="attach the contention profiler; with "
                         "--metrics-out, embeds a 'profile' section in "
                         "the run report, otherwise prints the summary")
    _add_host_flag(mb)
    _add_fairness_flag(mb)
    mb.set_defaults(fn=cmd_microbench)

    st = sub.add_parser("stm")
    st.add_argument("--variant", default="lcu",
                    choices=sorted(ObjectSTM.VARIANTS))
    st.add_argument("--structure", default="rb",
                    choices=sorted(STRUCTURES))
    st.add_argument("--model", default="A", choices=["A", "B"])
    st.add_argument("--threads", type=int, default=8)
    st.add_argument("--size", type=int, default=512)
    st.add_argument("--txns", type=int, default=40)
    _add_obs_flags(st)
    _add_host_flag(st)
    st.set_defaults(fn=cmd_stm)

    ap = sub.add_parser("app")
    ap.add_argument("--name", default="fluidanimate",
                    choices=sorted(all_apps()))
    ap.add_argument("--lock", default="lcu",
                    choices=sorted(all_algorithms()))
    ap.add_argument("--model", default="A", choices=["A", "B"])
    ap.add_argument("--threads", type=int, default=0)
    ap.add_argument("--seeds", type=int, default=3)
    _add_obs_flags(ap)
    _add_host_flag(ap)
    _add_fairness_flag(ap)
    ap.set_defaults(fn=cmd_app)

    fig = sub.add_parser("figure")
    fig.add_argument("name", choices=sorted(_FIGURES))
    fig.add_argument("--scale", type=int, default=1)
    _add_obs_flags(fig)
    fig.add_argument("--profile", action="store_true",
                    help="profile the first microbench run of the sweep "
                         "(fig9*/fig10* only)")
    fig.add_argument("--fairness", action="store_true",
                     help="attach the fairness observatory to the first "
                          "microbench run of the sweep (fig9*/fig10* "
                          "only)")
    fig.set_defaults(fn=cmd_figure)

    rp = sub.add_parser("report")
    rp.add_argument("file", help="run-report JSON produced by --metrics-out")
    rp.set_defaults(fn=cmd_report)

    pf = sub.add_parser(
        "profile",
        help="contention profiling: per-lock wait decomposition, "
             "queue-depth stats, critical path",
    )
    pf.add_argument("--run", default="microbench", choices=["microbench"],
                    help="harness to profile (microbench only for now)")
    pf.add_argument("--lock", default="lcu",
                    choices=sorted(all_algorithms()))
    pf.add_argument("--model", default="A", choices=["A", "B"])
    pf.add_argument("--threads", type=int, default=16)
    pf.add_argument("--write-pct", type=int, default=100)
    pf.add_argument("--iters", type=int, default=150)
    pf.add_argument("--cs-cycles", type=int, default=40,
                    help="critical-section length (cycles) — the latency "
                         "knob regression tests turn")
    pf.add_argument("--seed", type=int, default=1)
    pf.add_argument("--top", type=int, default=5,
                    help="how many critical-path edges to show/export")
    pf.add_argument("--folded-out", metavar="FILE", default=None,
                    help="write folded stacks (flamegraph.pl/speedscope "
                         "collapsed format) here")
    pf.add_argument("--trace-out", metavar="FILE", default=None,
                    help="write phase spans as Chrome trace-event JSON "
                         "(Perfetto-loadable) here")
    pf.add_argument("--json-out", metavar="FILE", default=None,
                    help="write a full run report (with profile section) "
                         "here")
    pf.set_defaults(fn=cmd_profile)

    df = sub.add_parser(
        "diff",
        help="diff two run reports (or, with --host, two bench "
             "trajectories); exit 1 on regression with "
             "--fail-on-regression",
    )
    df.add_argument("old", help="baseline run-report or trajectory JSON")
    df.add_argument("new", help="candidate run-report or trajectory JSON")
    df.add_argument("--threshold", type=float, default=None,
                    metavar="FRACTION",
                    help="relative change below which a quantity is "
                         "'unchanged' (default 0.10; 0.25 with --host "
                         "because host wall-clock is noisy)")
    df.add_argument("--host", action="store_true",
                    help="compare *host* performance: cycles/host-sec, "
                         "host-time attribution and engine counters "
                         "from bench trajectories or --host-prof "
                         "run reports")
    df.add_argument("--record", type=int, default=-1, metavar="N",
                    help="which trajectory record to compare (0-based; "
                         "negatives count from the end; default -1 = "
                         "latest; when OLD and NEW are the same file, "
                         "OLD takes the record before NEW)")
    df.add_argument("--fail-on-regression", action="store_true",
                    help="exit 1 if any known-direction quantity "
                         "regressed beyond the threshold")
    df.add_argument("--top", type=int, default=20,
                    help="rows to print per verdict class")
    df.add_argument("--json-out", metavar="FILE", default=None,
                    help="write the machine-readable diff here")
    df.set_defaults(fn=cmd_diff)

    bn = sub.add_parser(
        "bench",
        help="benchmark the simulator itself: pinned matrix, best-of-N "
             "host timings, host-time attribution; appends one record "
             "to a trajectory (BENCH_engine.json)",
    )
    bn.add_argument("--quick", action="store_true",
                    help=f"single pinned cell "
                         f"({'/'.join(map(str, QUICK_CELL))}), best of "
                         f"{QUICK_REPEATS} — the CI smoke configuration")
    bn.add_argument("--locks", default=None, metavar="CSV",
                    help="comma-separated lock list "
                         f"(default: {','.join(DEFAULT_LOCKS)})")
    bn.add_argument("--models", default=None, metavar="CSV",
                    help="comma-separated model list (default: A,B)")
    bn.add_argument("--threads", default=None, metavar="CSV",
                    help="comma-separated thread counts "
                         f"(default: "
                         f"{','.join(map(str, DEFAULT_THREADS))})")
    bn.add_argument("--write-pct", type=int, default=DEFAULT_WRITE_PCT)
    bn.add_argument("--iters", type=int, default=DEFAULT_ITERS,
                    help="lock/unlock iterations per thread")
    bn.add_argument("--repeats", type=int, default=None,
                    help=f"timed repeats per cell (best-of-N; default "
                         f"{DEFAULT_REPEATS}, {QUICK_REPEATS} with "
                         f"--quick)")
    bn.add_argument("--seed", type=int, default=1)
    bn.add_argument("--no-host-prof", action="store_true",
                    help="skip host-time attribution in the "
                         "instrumented pass (engine counters are still "
                         "collected)")
    bn.add_argument("--profile", action="store_true",
                    help="also attach the contention profiler and embed "
                         "a BENCH_profile-style digest per cell")
    bn.add_argument("--sample-interval", type=int, default=0,
                    metavar="CYCLES",
                    help="gauge sampling interval for the instrumented "
                         "pass (0 = off)")
    bn.add_argument("--embed-report", action="store_true",
                    help="embed a full run report (schema v3) per cell "
                         "so plain 'repro diff' can read the "
                         "trajectory")
    bn.add_argument("--out", metavar="FILE", default="BENCH_engine.json",
                    help="trajectory file to append to "
                         "(default: BENCH_engine.json)")
    bn.add_argument("--label", default=None,
                    help="record label; appending an existing label "
                         "replaces that record (idempotent re-runs)")
    bn.add_argument("--note", default=None,
                    help="free-form note stored in the record")
    bn.add_argument("--no-append", action="store_true",
                    help="don't touch the trajectory (use with "
                         "--json-out for throwaway runs)")
    bn.add_argument("--json-out", metavar="FILE", default=None,
                    help="also write this run's single record here")
    bn.add_argument("--folded-out", metavar="FILE", default=None,
                    help="write merged host folded stacks "
                         "(flamegraph.pl/speedscope format) here")
    bn.set_defaults(fn=cmd_bench)

    sw = sub.add_parser(
        "sweep",
        help="run a microbench matrix sharded across worker processes "
             "and merge the shards into one deterministic RunReport "
             "(byte-identical to the serial run)",
    )
    sw.add_argument("--locks", default=None, metavar="CSV",
                    help="comma-separated lock list "
                         f"(default: {','.join(DEFAULT_LOCKS)})")
    sw.add_argument("--models", default=None, metavar="CSV",
                    help="comma-separated model list (default: A,B)")
    sw.add_argument("--threads", default=None, metavar="CSV",
                    help="comma-separated thread counts "
                         f"(default: "
                         f"{','.join(map(str, DEFAULT_THREADS))})")
    sw.add_argument("--seeds", default="1", metavar="CSV",
                    help="comma-separated seed list; every cell runs "
                         "once per seed (default: 1)")
    sw.add_argument("--write-pct", type=int, default=DEFAULT_WRITE_PCT)
    sw.add_argument("--iters", type=int, default=DEFAULT_ITERS,
                    help="lock/unlock iterations per thread")
    sw.add_argument("--workers", type=int, default=None, metavar="N",
                    help="worker processes (default: core count; "
                         "0 or 1 = serial in-process)")
    sw.add_argument("--fairness", action="store_true",
                    help="attach a fairness observatory per shard and "
                         "merge the fairness.* counters/histograms/"
                         "watermarks into the report metrics (the "
                         "merge is byte-identical for any --workers)")
    sw.add_argument("--verify-serial", action="store_true",
                    help="re-run the sweep serially and fail unless the "
                         "merged reports are byte-identical (the CI "
                         "smoke gate)")
    sw.add_argument("--out", metavar="FILE", default=None,
                    help="write the merged RunReport JSON here")
    sw.set_defaults(fn=cmd_sweep)

    fr = sub.add_parser(
        "fairness",
        help="fairness scorecard: run the pinned lock x model matrix "
             "under the fairness observatory (Jain index, worst "
             "overtake, writer share, p999 wait) and append one record "
             "to a trajectory (BENCH_fairness.json)",
    )
    fr.add_argument("--quick", action="store_true",
                    help="shrink every cell (fewer threads, shorter "
                         "duration) while keeping the full lock x model "
                         "coverage — the CI smoke configuration")
    fr.add_argument("--locks", default=None, metavar="CSV",
                    help="comma-separated lock list (default: "
                         "lcu,lcu_fb,ssb,mcs,ticket,mrsw,tatas)")
    fr.add_argument("--models", default=None, metavar="CSV",
                    help="comma-separated model list (default: A,B)")
    fr.add_argument("--threads", type=int, default=12,
                    help="threads per cell (default 12; 8 with --quick)")
    fr.add_argument("--write-pct", type=int, default=20,
                    help="writer share of the fixed role split "
                         "(default 20%% — writer minority)")
    fr.add_argument("--duration", type=int, default=120_000,
                    help="simulated cycles per cell (default 120000; "
                         "40000 with --quick)")
    fr.add_argument("--seed", type=int, default=1)
    fr.add_argument("--slo", type=int, default=None, metavar="CYCLES",
                    help="per-acquire latency target; cells report SLO "
                         "violations and time-in-violation")
    fr.add_argument("--starvation-bound", type=int, default=100_000,
                    metavar="CYCLES",
                    help="watchdog alert threshold: a waiter older than "
                         "this raises a StarvationAlert (default "
                         "100000)")
    fr.add_argument("--threshold", type=float, default=0.10,
                    metavar="FRACTION",
                    help="relative-change gate for "
                         "--fail-on-regression (default 0.10)")
    fr.add_argument("--fail-on-regression", action="store_true",
                    help="exit 1 if any scorecard quantity regressed "
                         "beyond --threshold vs the trajectory's "
                         "latest record (or if the observatory "
                         "perturbed simulated cycles)")
    fr.add_argument("--out", metavar="FILE",
                    default="BENCH_fairness.json",
                    help="trajectory file to append to "
                         "(default: BENCH_fairness.json)")
    fr.add_argument("--label", default=None,
                    help="record label; appending an existing label "
                         "replaces that record (idempotent re-runs)")
    fr.add_argument("--note", default=None,
                    help="free-form note stored in the record")
    fr.add_argument("--no-append", action="store_true",
                    help="don't touch the trajectory (use with "
                         "--json-out for throwaway runs)")
    fr.add_argument("--json-out", metavar="FILE", default=None,
                    help="also write this run's single record here")
    fr.set_defaults(fn=cmd_fairness)

    ck = sub.add_parser(
        "check",
        help="fuzz lock algorithms under the invariant monitor/oracle",
    )
    ck.add_argument("--lock", default="lcu",
                    choices=sorted(all_algorithms()))
    ck.add_argument("--all", action="store_true",
                    help="check every registered algorithm")
    ck.add_argument("--model", default="all", choices=["A", "B", "T", "all"],
                    help="machine model ('all' = A and B)")
    ck.add_argument("--runs", type=int, default=10,
                    help="fuzz cases per (lock, model) combination")
    ck.add_argument("--seed", type=int, default=0,
                    help="master seed for case generation")
    ck.add_argument("--minimize", action="store_true",
                    help="shrink the first failing case to a minimal "
                         "JSON reproducer")
    ck.add_argument("--save-repro", metavar="FILE", default=None,
                    help="where to write the reproducer JSON")
    ck.add_argument("--replay", metavar="FILE", default=None,
                    help="replay a reproducer JSON instead of fuzzing")
    ck.add_argument("--trace-out", metavar="FILE", default=None,
                    help="write a Chrome trace-event JSON (open spans "
                         "are flushed, not dropped, on a violation)")
    ck.add_argument("--workers", type=int, default=None, metavar="N",
                    help="fan (lock, model) combinations out over N "
                         "worker processes; results are identical to "
                         "the serial run (default: serial)")
    ck.set_defaults(fn=cmd_check)

    fl = sub.add_parser(
        "faults",
        help="run the nemesis matrix: deterministic fault injection "
             "(fault classes x lock algorithms x machine models)",
    )
    fl.add_argument("--algos", default=None,
                    help="comma-separated algorithm list "
                         "(default: lcu,lcu_fb,mcs,clh,ticket,mrsw)")
    fl.add_argument("--models", default=None,
                    help="comma-separated model list (default: A,B)")
    fl.add_argument("--classes", default=None,
                    help="comma-separated fault classes (default: all "
                         "applicable per algorithm)")
    fl.add_argument("--list-classes", action="store_true",
                    help="print the known fault classes, grouped by "
                         "family, and exit")
    fl.add_argument("--no-fencing", action="store_true",
                    help="sabotage mode: leases are still reclaimed but "
                         "grants carry no enforced fence token, so a "
                         "zombie holder's stale operations succeed "
                         "silently — zombie cells are then *expected* "
                         "to violate (the proof the fences earn their "
                         "keep)")
    fl.add_argument("--seed", type=int, default=0,
                    help="matrix seed (every cell derives from it)")
    fl.add_argument("--threads", type=int, default=6)
    fl.add_argument("--iters", type=int, default=30,
                    help="lock/unlock iterations per thread")
    fl.add_argument("--horizon", type=int, default=12_000,
                    help="fault-plan horizon in cycles")
    fl.add_argument("--workers", type=int, default=None, metavar="N",
                    help="fan matrix cells out over N worker processes; "
                         "the report is byte-identical to the serial "
                         "run (default: serial)")
    fl.add_argument("--out", metavar="FILE", default=None,
                    help="write the full JSON nemesis report here")
    fl.set_defaults(fn=cmd_faults)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
