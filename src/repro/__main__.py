"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables``      — print the paper's Figure 1 / Figure 8 tables.
* ``microbench``  — the single-lock critical-section benchmark.
* ``stm``         — the STM data-structure benchmark.
* ``app``         — one application kernel under one lock model.
* ``figure``      — regenerate a paper figure (fig9a .. fig13).
* ``locks``       — list registered lock algorithms.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.base import all_apps, run_app
from repro.harness import figures
from repro.harness.microbench import run_microbench
from repro.harness.stm_bench import STRUCTURES, run_stm_bench
from repro.harness.tables import figure1_table, figure8_table
from repro.locks.base import all_algorithms
from repro.params import model_a, model_b
from repro.stm.core import ObjectSTM

_FIGURES = {
    "fig9a": lambda s: figures.figure9("A", iters_per_thread=100 * s),
    "fig9b": lambda s: figures.figure9("B", write_ratios=(100, 50),
                                       iters_per_thread=100 * s),
    "fig10a": lambda s: figures.figure10(
        "A", thread_counts=(8, 16, 32, 48),
        iters_per_thread=30 * s, quantum=20_000,
    ),
    "fig10b": lambda s: figures.figure10(
        "B", thread_counts=(4, 8, 16, 32), iters_per_thread=60 * s,
        locks=("lcu", "mcs", "mrsw", "tatas"),
    ),
    "fig11a": lambda s: figures.figure11("A", txns_per_thread=40 * s),
    "fig11b": lambda s: figures.figure11(
        "B", thread_counts=(1, 4, 8, 16), txns_per_thread=30 * s,
    ),
    "fig12a": lambda s: figures.figure12(
        "A", sizes={"rb": 2_048 * s, "skip": 2_048 * s, "hash": 8_192 * s},
        txns_per_thread=30 * s,
    ),
    "fig12b": lambda s: figures.figure12(
        "B", sizes={"rb": 1_024 * s, "skip": 1_024 * s, "hash": 4_096 * s},
        txns_per_thread=25 * s,
    ),
    "fig13": lambda s: figures.figure13(seeds=tuple(range(1, 3 + s))),
}


def _model(name: str):
    return model_a() if name.upper() == "A" else model_b()


def cmd_tables(_args) -> int:
    print(figure1_table())
    print()
    print(figure8_table())
    return 0


def cmd_locks(_args) -> int:
    for name, cls in sorted(all_algorithms().items()):
        kind = "HW" if cls.hardware else "SW"
        rw = "RW" if cls.rw_support else "mutex"
        print(f"{name:8s} [{kind}, {rw}] {cls.__doc__.splitlines()[0] if cls.__doc__ else ''}")
    return 0


def cmd_microbench(args) -> int:
    r = run_microbench(
        _model(args.model), args.lock, args.threads, args.write_pct,
        iters_per_thread=args.iters,
    )
    print(r)
    print(f"  fairness={r.fairness:.3f} acquire latency mean="
          f"{r.acquire_latency_mean:.0f} hub util={r.hub_utilisation:.2f}")
    return 0


def cmd_stm(args) -> int:
    r = run_stm_bench(
        _model(args.model), args.variant, args.structure,
        threads=args.threads, initial_size=args.size,
        txns_per_thread=args.txns,
    )
    print(r)
    return 0


def cmd_app(args) -> int:
    r = run_app(_model(args.model), args.name, args.lock,
                threads=args.threads, seeds=list(range(1, args.seeds + 1)))
    print(r)
    return 0


def cmd_figure(args) -> int:
    result = _FIGURES[args.name](args.scale)
    print(result.text)
    if result.checks:
        ok = all(result.checks.values())
        print(f"shape checks [{'OK' if ok else 'MISMATCH'}]:",
              result.checks)
        return 0 if ok else 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("tables").set_defaults(fn=cmd_tables)
    sub.add_parser("locks").set_defaults(fn=cmd_locks)

    mb = sub.add_parser("microbench")
    mb.add_argument("--lock", default="lcu",
                    choices=sorted(all_algorithms()))
    mb.add_argument("--model", default="A", choices=["A", "B"])
    mb.add_argument("--threads", type=int, default=16)
    mb.add_argument("--write-pct", type=int, default=100)
    mb.add_argument("--iters", type=int, default=150)
    mb.set_defaults(fn=cmd_microbench)

    st = sub.add_parser("stm")
    st.add_argument("--variant", default="lcu",
                    choices=sorted(ObjectSTM.VARIANTS))
    st.add_argument("--structure", default="rb",
                    choices=sorted(STRUCTURES))
    st.add_argument("--model", default="A", choices=["A", "B"])
    st.add_argument("--threads", type=int, default=8)
    st.add_argument("--size", type=int, default=512)
    st.add_argument("--txns", type=int, default=40)
    st.set_defaults(fn=cmd_stm)

    ap = sub.add_parser("app")
    ap.add_argument("--name", default="fluidanimate",
                    choices=sorted(all_apps()))
    ap.add_argument("--lock", default="lcu",
                    choices=sorted(all_algorithms()))
    ap.add_argument("--model", default="A", choices=["A", "B"])
    ap.add_argument("--threads", type=int, default=0)
    ap.add_argument("--seeds", type=int, default=3)
    ap.set_defaults(fn=cmd_app)

    fig = sub.add_parser("figure")
    fig.add_argument("name", choices=sorted(_FIGURES))
    fig.add_argument("--scale", type=int, default=1)
    fig.set_defaults(fn=cmd_figure)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
