"""Extension bench: TP-MCS vs MCS vs LCU under oversubscription.

He, Scherer & Scott's time-published MCS lock (paper reference [15]) is
the *software* remedy for the queue-lock preemption anomaly the paper's
Figure 10 exposes.  This bench puts all three designs side by side:

* MCS: cheap handoffs, catastrophic past the core count;
* TP-MCS: pays timestamp publishing at all loads, bounds the anomaly by
  skipping stale waiters;
* LCU: hardware grant timer — cheaper than both, anomaly-bounded.
"""

from repro.harness.microbench import run_microbench
from repro.params import model_a


def test_tpmcs_bounds_the_anomaly(benchmark):
    def run():
        out = {}
        for lock in ("mcs", "tpmcs", "lcu"):
            series = []
            for t in (16, 32, 48):
                cfg = model_a(timeslice=20_000)
                r = run_microbench(cfg, lock, threads=t, write_pct=100,
                                   iters_per_thread=30)
                series.append(round(r.cycles_per_cs, 1))
            out[lock] = series
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncycles/CS at threads (16, 32, 48):")
    for lock, series in out.items():
        print(f"  {lock:6s}: {series}")
    benchmark.extra_info.update(out)

    mcs, tpmcs, lcu = out["mcs"], out["tpmcs"], out["lcu"]
    # TP-MCS pays for its timestamps within the core count...
    assert tpmcs[0] > 1.2 * mcs[0]
    # ...but bounds the anomaly that wrecks plain MCS past it
    assert tpmcs[-1] < 0.8 * mcs[-1]
    # the hardware grant timer beats the software remedy on both counts
    assert lcu[0] < tpmcs[0] and lcu[-1] < tpmcs[-1]
