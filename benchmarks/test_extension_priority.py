"""Extension bench: real-time priority windows (paper future work §V).

A periodic "real-time" thread acquires a contended lock with
``priority=True``: the LRT opens a bounded window during which ordinary
requestors are deferred, so the RT thread's acquire latency collapses to
roughly the current holder's residual critical section.  The cost — a
bounded slowdown of the ordinary class — is also measured.
"""

from repro import Machine, OS, model_a
from repro.cpu import ops
from repro.lcu import api
from repro.sim.stats import Accumulator


def _run(priority: bool, churners: int = 8, rounds: int = 15):
    machine = Machine(model_a())
    os_ = OS(machine)
    addr = machine.alloc.alloc_line()
    rt_lat = Accumulator()
    ordinary_cs = [0]
    stop = []

    def churner(thread):
        while not stop:
            yield from api.lock(addr, True)
            yield ops.Compute(150)
            ordinary_cs[0] += 1
            yield from api.unlock(addr, True)
            yield ops.Compute(20)

    def rt_task(thread):
        yield ops.Compute(2_000)   # let contention build first
        for _ in range(rounds):
            t0 = machine.sim.now
            yield from api.lock(addr, True, priority=priority)
            rt_lat.add(machine.sim.now - t0)
            yield ops.Compute(60)
            yield from api.unlock(addr, True)
            yield ops.Compute(600)  # the task's period
        stop.append(True)

    for _ in range(churners):
        os_.spawn(churner)
    os_.spawn(rt_task)
    elapsed = os_.run_all(max_cycles=1_000_000_000)
    return rt_lat, ordinary_cs[0], elapsed


def test_priority_window_latency(benchmark):
    def run():
        base_lat, base_cs, base_t = _run(False)
        prio_lat, prio_cs, prio_t = _run(True)
        return {
            "rt_wait_normal": base_lat.mean,
            "rt_wait_priority": prio_lat.mean,
            "rt_worst_normal": base_lat.max,
            "rt_worst_priority": prio_lat.max,
            "ordinary_throughput_ratio": (prio_cs / prio_t) / (base_cs / base_t),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for k, v in out.items():
        print(f"  {k}: {v:.2f}")
    benchmark.extra_info.update(out)
    # the priority window must cut both mean and worst-case RT wait
    assert out["rt_wait_priority"] < 0.6 * out["rt_wait_normal"]
    assert out["rt_worst_priority"] <= out["rt_worst_normal"]
    # and the ordinary class keeps making progress (bounded cost)
    assert out["ordinary_throughput_ratio"] > 0.4
