"""Figure 10: critical-section time, LCU vs software locks.

Expected shapes (paper Section IV-A):
* LCU beats MCS by >2x on lock transfer (direct grant vs invalidate +
  refetch), in both models.
* MRSW gets *worse* as the reader proportion rises (reader-counter
  coherence hotspot) while the LCU gets better — the paper reports an
  average 9.14x LCU speedup at 75% reads.
* TAS/TATAS suffer contention collapse as threads grow in model A.
* Past 32 threads (more threads than cores) queue-based software locks
  hit the preemption anomaly; the LCU stays smooth thanks to the grant
  timer.
"""

from conftest import assert_checks, emit

from repro.harness import figure10


def test_fig10a_model_a(benchmark):
    r = benchmark.pedantic(
        figure10,
        kwargs=dict(model="A", thread_counts=(8, 16, 32, 48),
                    write_ratios=(100, 25), iters_per_thread=30,
                    quantum=20_000,
                    locks=("lcu", "mcs", "mrsw", "tas", "tatas",
                           "pthread")),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    lcu = r.series["lcu-100%w"]
    mcs = r.series["mcs-100%w"]
    # a blocking mutex also avoids the spin-lock anomaly (sleepers free
    # their cores), though it pays futex costs per contended handoff —
    # both "eviction-safe" designs must stay far below MCS at 48 threads
    pthread = r.series["pthread-100%w"]
    assert pthread[-1] < 0.6 * mcs[-1]
    benchmark.extra_info["lcu_over_mcs"] = [
        m / l for l, m in zip(lcu, mcs)
    ]
    # oversubscription anomaly: MCS at 48 threads falls off a cliff
    # (handoffs stall behind preempted waiters for whole reschedules);
    # the LCU's grant timer skips absent threads and stays far smoother
    assert mcs[-1] > 3.0 * mcs[-2], (mcs[-2], mcs[-1])
    assert mcs[-1] > 3.0 * lcu[-1], (mcs[-1], lcu[-1])
    assert lcu[-1] < 4.0 * lcu[-2], (lcu[-2], lcu[-1])
    # MRSW degrades as readers increase; LCU improves
    assert r.series["mrsw-25%w"][-2] > r.series["mrsw-100%w"][-2] * 0.8
    assert r.series["lcu-25%w"][-2] < r.series["lcu-100%w"][-2]


def test_fig10b_model_b(benchmark):
    r = benchmark.pedantic(
        figure10,
        kwargs=dict(model="B", thread_counts=(4, 8, 16, 32),
                    write_ratios=(100,), iters_per_thread=60,
                    locks=("lcu", "mcs", "mrsw", "tatas")),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    # LCU > 2x over MCS holds in the multi-CMP model too
    lcu = r.series["lcu-100%w"]
    mcs = r.series["mcs-100%w"]
    assert all(m > 1.6 * l for l, m in zip(lcu, mcs))
