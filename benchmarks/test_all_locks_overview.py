"""Capstone bench: every registered lock on one standard workload.

Quantifies the paper's Figure 1 comparison table: one row per
implemented mechanism, measured on the same Model A microbenchmark
(16 threads / 100% writes, plus 25% writes for the RW-capable locks).
"""

from repro.harness.microbench import run_microbench
from repro.harness.reporting import render_table
from repro.locks import all_algorithms
from repro.params import model_a


def test_all_locks_quantified(benchmark):
    def run():
        rows = [["lock", "cyc/CS (mutex)", "cyc/CS (75% read)", "fairness"]]
        data = {}
        for name, cls in sorted(all_algorithms().items()):
            r = run_microbench(model_a(), name, threads=16, write_pct=100,
                               iters_per_thread=60)
            rw = "-"
            if cls.rw_support:
                rr = run_microbench(model_a(), name, threads=16,
                                    write_pct=25, iters_per_thread=60)
                rw = f"{rr.cycles_per_cs:.1f}"
            rows.append([name, f"{r.cycles_per_cs:.1f}", rw,
                         f"{r.fairness:.3f}"])
            data[name] = r.cycles_per_cs
        return rows, data

    rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="All locks, Model A, 16 threads"))
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in data.items()}
    )
    # the paper's headline ordering must hold on the common workload
    assert data["lcu"] < data["ssb"] < data["tas"]
    assert data["lcu"] < data["mcs"]
    assert data["lcu"] == min(data.values())
