"""Figure 12: STM transaction time at 16 threads, larger structures.

Expected shapes (paper Section IV-B): at 16 threads and 75% read-only
transactions the LCU speeds up the lock-based STM by ~1.5-3.4x on the
RB-tree and skip list (root reader congestion removed) and by >=1.4x on
the hash table (no single entry point — the gain is pure lock-handling
speed).  Paper sizes 2^15/2^19 are scaled to 2^11/2^13 by default; pass
bigger sizes via figure12(sizes=...) for paper scale (EXPERIMENTS.md).
"""

from conftest import assert_checks, emit

from repro.harness import figure12


def test_fig12a_model_a(benchmark):
    r = benchmark.pedantic(
        figure12,
        kwargs=dict(model="A", threads=16,
                    sizes={"rb": 2_048, "skip": 2_048, "hash": 8_192},
                    txns_per_thread=30),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    speedups = {
        s: sw / l for s, sw, l in zip(
            r.xs, r.series["sw-only"], r.series["lcu"]
        )
    }
    print("LCU speedup over sw-only:", speedups)
    benchmark.extra_info["lcu_speedup"] = speedups
    assert speedups["rb"] > 1.4
    assert speedups["skip"] > 1.4
    assert speedups["hash"] > 1.2


def test_fig12b_model_b(benchmark):
    r = benchmark.pedantic(
        figure12,
        kwargs=dict(model="B", threads=16,
                    sizes={"rb": 1_024, "skip": 1_024, "hash": 4_096},
                    txns_per_thread=25),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    speedups = [
        sw / l for sw, l in zip(r.series["sw-only"], r.series["lcu"])
    ]
    assert min(speedups) > 1.2
