"""Ablations of LCU design choices called out in DESIGN.md.

* Grant timeout: too small forwards grants before threads can collect
  them (wasted handoffs); too large stalls the queue behind preempted
  threads.  The default must sit in the efficient basin.
* LCU entry count: the paper uses 8 ordinary entries (model A); this
  ablation confirms the microbenchmark is insensitive to more entries
  and survives fewer (nonblocking fallback).
* Direct transfer: disabling the queue by bouncing every handoff off the
  LRT is approximated by the SSB; the gap measures the value of
  LCU-to-LCU grants.
"""

from repro.harness.microbench import run_microbench
from repro.params import model_a


def test_grant_timeout_sweep(benchmark):
    """The grant timer's value trades lock idle time against wasted
    handoffs: with threads oversubscribed, every grant that lands on a
    descheduled thread's entry idles the lock for up to the timeout, so
    large timeouts re-create the queue-lock preemption anomaly for the
    LCU itself.  (Scaled-down machine so the pathological points stay
    affordable to simulate.)"""
    from repro.params import small_test_model

    def run():
        out = {}
        for timeout in (100, 500, 5_000):
            cfg = small_test_model(
                lcu_grant_timeout=timeout, timeslice=3_000,
            )
            # 12 threads on 4 cores: heavy preemption while spinning
            r = run_microbench(cfg, "lcu", threads=12,
                               write_pct=100, iters_per_thread=40)
            out[timeout] = r.cycles_per_cs
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncycles/CS by grant timeout:", out)
    benchmark.extra_info["by_timeout"] = out
    # a long timer must hurt under preemption (queue stalls behind
    # absent threads); the short timer must stay close to the default
    assert out[5_000] > 1.5 * out[500], out
    assert out[100] < 1.5 * out[500], out


def test_lcu_entry_count_sweep(benchmark):
    def run():
        out = {}
        for entries in (2, 8, 32):
            cfg = model_a(lcu_ordinary_entries=entries)
            r = run_microbench(cfg, "lcu", threads=16,
                               write_pct=100, iters_per_thread=80)
            out[entries] = r.cycles_per_cs
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncycles/CS by LCU entries:", out)
    # single-lock microbenchmark uses one entry per LCU at a time: the
    # entry count must not matter (within noise)
    assert max(out.values()) < 1.3 * min(out.values())


def test_enqueue_prefetch(benchmark):
    """Footnote 1 of the paper: an Enqueue primitive used as a lock
    prefetch.  Issuing ``enq`` before the compute that precedes the
    critical section overlaps the request round trip, so the eventual
    ``lock`` finds the grant already local."""
    from repro import Machine, OS
    from repro.cpu import ops
    from repro.lcu import api

    def run():
        out = {}
        for prefetch in (False, True):
            m = Machine(model_a())
            os_ = OS(m)
            locks = [m.alloc.alloc_line() for _ in range(40)]
            lat = []

            def prog(thread):
                for a in locks:
                    if prefetch:
                        yield from api.enqueue(a, True)
                    yield ops.Compute(300)   # pre-CS work, overlaps req
                    t0 = m.sim.now
                    yield from api.lock(a, True)
                    lat.append(m.sim.now - t0)
                    yield ops.Compute(20)
                    yield from api.unlock(a, True)

            os_.spawn(prog)
            os_.run_all(max_cycles=100_000_000)
            out["prefetch" if prefetch else "baseline"] = (
                sum(lat) / len(lat)
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nacquire latency (cycles):", out)
    benchmark.extra_info.update(out)
    # the prefetch must hide nearly the whole request round trip
    assert out["prefetch"] < 0.3 * out["baseline"], out


def test_direct_transfer_value(benchmark):
    def run():
        lcu = run_microbench(model_a(), "lcu", threads=16,
                             write_pct=100, iters_per_thread=80)
        ssb = run_microbench(model_a(), "ssb", threads=16,
                             write_pct=100, iters_per_thread=80)
        return lcu.cycles_per_cs, ssb.cycles_per_cs

    lcu, ssb = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ndirect transfer (lcu) {lcu:.1f} vs remote retry (ssb) {ssb:.1f}")
    assert lcu < ssb
