"""Figure 11: STM scalability — RB-tree, 2^8 nodes, 75% read-only.

Expected shapes (paper Section IV-B):
* sw-only's commit phase (lock acquisition) grows with the thread count
  — reader congestion at the tree root;
* the LCU stays nearly flat, approaching the (privatization-unsafe)
  Fraser nonblocking system at high thread counts, and beats the SSB;
* single-threaded, the LCU improves sw-only by a modest margin (the
  paper reports 10.8%).
"""

from conftest import assert_checks, emit

from repro.harness import figure11


def test_fig11a_model_a(benchmark):
    r = benchmark.pedantic(
        figure11,
        kwargs=dict(model="A", thread_counts=(1, 2, 4, 8, 16),
                    txns_per_thread=40),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    benchmark.extra_info["txn_cycles"] = {
        k: [round(x) for x in v] for k, v in r.series.items()
    }
    # at 16 threads the LCU approaches Fraser (within 2x) and beats SSB
    assert r.series["lcu"][-1] < 2.0 * r.series["fraser"][-1]
    assert r.series["lcu"][-1] < r.series["ssb"][-1]
    # the boost over sw-only at high thread counts is large (paper: ~3x)
    assert r.series["sw-only"][-1] / r.series["lcu"][-1] > 2.0


def test_fig11b_model_b(benchmark):
    r = benchmark.pedantic(
        figure11,
        kwargs=dict(model="B", thread_counts=(1, 4, 8, 16),
                    txns_per_thread=30),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    # the multi-CMP model makes sw-only even worse past one chip
    assert r.series["sw-only"][-1] / r.series["lcu"][-1] > 2.0
