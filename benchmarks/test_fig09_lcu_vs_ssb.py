"""Figure 9: critical-section time, LCU vs SSB, Models A and B.

Expected shapes (paper Section IV-A):
* Model A: LCU outperforms SSB on 100% writes (~30-40% faster transfer);
  both improve as the reader share grows.
* Model B: SSB's remote retries load the inter-chip hub links and its
  CS time blows up with thread count, while the LCU's local spin keeps
  degradation mild past one chip's worth of threads.
"""

from conftest import assert_checks, emit

from repro.harness import figure9

THREADS = (4, 8, 16, 32)


def test_fig9a_model_a(benchmark):
    r = benchmark.pedantic(
        figure9,
        kwargs=dict(model="A", thread_counts=THREADS,
                    write_ratios=(100, 75, 50, 25), iters_per_thread=100),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    benchmark.extra_info["lcu_100w_cyc_per_cs"] = r.series["lcu-100%w"]
    benchmark.extra_info["ssb_100w_cyc_per_cs"] = r.series["ssb-100%w"]
    # readers help both systems
    assert r.series["lcu-25%w"][-1] < r.series["lcu-100%w"][-1]
    assert r.series["ssb-25%w"][-1] < r.series["ssb-100%w"][-1]


def test_fig9b_model_b(benchmark):
    r = benchmark.pedantic(
        figure9,
        kwargs=dict(model="B", thread_counts=THREADS,
                    write_ratios=(100, 50), iters_per_thread=100),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    lcu = r.series["lcu-100%w"]
    ssb = r.series["ssb-100%w"]
    # SSB collapses across chips (remote retries saturate the hub links);
    # the LCU's local spin keeps it far ahead at 32 threads and its own
    # cross-chip degradation stays bounded.
    assert ssb[-1] > 2 * lcu[-1]
    assert ssb[-1] > 3 * ssb[0], (ssb[0], ssb[-1])   # the collapse
    assert lcu[-1] < 3.5 * lcu[0], (lcu[0], lcu[-1])  # the mild dip
