"""Figures 1 and 8: the paper's qualitative tables, generated from code."""

from repro.harness import figure1_table, figure8_table


def test_figure1_comparison_table(benchmark):
    table = benchmark(figure1_table)
    print()
    print(table)
    # the LCU row must claim the full feature set the paper claims
    lcu_row = next(l for l in table.splitlines() if l.startswith("lcu"))
    assert lcu_row.count("yes") == 5
    assert "1 (direct LCU-to-LCU)" in lcu_row


def test_figure8_parameter_table(benchmark):
    table = benchmark(figure8_table)
    print()
    print(table)
    assert "32 (32x1)" in table and "32 (4x8)" in table
    assert "186" in table and "315" in table
