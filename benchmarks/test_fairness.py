"""Fairness and starvation-freedom measurements (paper's core claim).

The paper's title property: the LCU provides *fair* reader-writer
locking.  These benches quantify it against the unfair baselines:

* Jain fairness index of per-thread acquisition counts over a fixed
  duration (LCU's queueing ~1.0; TAS/TATAS capture-prone).
* Writer share under a reader flood: the SSB's reader preference starves
  writers; the LCU's queue guarantees them service.
"""

from repro.harness.microbench import run_microbench
from repro.params import model_a, model_b


def test_acquisition_fairness_index(benchmark):
    def run():
        out = {}
        for lock in ("lcu", "mcs", "tatas", "ssb"):
            r = run_microbench(
                model_b(), lock, threads=16, write_pct=100,
                mode="duration", duration=150_000,
            )
            out[lock] = round(r.fairness, 3)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nJain fairness index (1.0 = perfectly fair):", out)
    benchmark.extra_info["jain"] = out
    assert out["lcu"] > 0.95
    assert out["mcs"] > 0.95
    # model B's hierarchical coherence favours same-chip handoffs for
    # coherence-based locks (the paper's "unfair lock transfer between
    # threads in the same chip"); the LCU must beat TATAS
    assert out["lcu"] >= out["tatas"]


def test_writer_starvation_under_reader_flood(benchmark):
    """4 writers vs 12 readers, continuous load: measure the writers'
    share of completed critical sections."""

    def run():
        out = {}
        for lock in ("lcu", "ssb"):
            r = run_microbench(
                model_a(), lock, threads=16, write_pct=25,
                fixed_roles=True, mode="duration", duration=200_000,
                cs_cycles=60, think_cycles=5,
            )
            total = r.writer_cs + r.reader_cs
            out[lock] = r.writer_cs / total if total else 0.0
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nwriter share of CS completions (4 writers / 12 readers):", out)
    benchmark.extra_info["writer_share"] = out
    # queue fairness guarantees writers a real share; reader preference
    # (SSB) suppresses them
    assert out["lcu"] > 1.5 * out["ssb"]
    assert out["lcu"] > 0.10
