"""Fairness and starvation-freedom measurements (paper's core claim).

The paper's title property: the LCU provides *fair* reader-writer
locking.  These benches quantify it against the unfair baselines via
the fairness observatory (:mod:`repro.obs.fairness`) — the assertions
read the ``fairness`` section of the RunReport the harness emits, the
same artifact ``--fairness`` produces on the CLI:

* Jain fairness index of per-thread acquisition counts over a fixed
  duration (LCU's queueing ~1.0; TAS/TATAS capture-prone).
* Worst single-waiter overtake count: bounded by queue skew for the
  LCU, unbounded for retry-based locks.
* Writer share under a reader flood: the SSB's reader preference
  starves writers; the LCU's queue guarantees them service.
"""

from repro.harness.microbench import run_microbench
from repro.obs import MetricsRegistry, build_run_report
from repro.obs.fairness import FairnessObservatory
from repro.params import model_a, model_b


def _fairness_cell(config, lock, **kw):
    """One observed duration-mode run; returns the RunReport's
    fairness lock summary (the single lock of the microbench)."""
    registry = MetricsRegistry()
    obs = FairnessObservatory()
    r = run_microbench(config, lock, registry=registry, fairness=obs,
                       mode="duration", **kw)
    report = build_run_report(
        "microbench",
        {"lock": lock, "model": r.model, "threads": r.threads,
         "write_pct": r.write_pct},
        {"total_cs": r.total_cs, "fairness": r.fairness},
        metrics=registry.to_dict(),
        fairness=obs.to_dict(),
    )
    locks = report["fairness"]["locks"]
    assert len(locks) == 1
    return next(iter(locks.values())), report


def test_acquisition_fairness_index(benchmark):
    def run():
        out = {}
        for lock in ("lcu", "mcs", "tatas", "ssb"):
            summary, _ = _fairness_cell(
                model_b(), lock, threads=16, write_pct=100,
                duration=150_000,
            )
            out[lock] = round(summary["jain"], 3)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nJain fairness index (1.0 = perfectly fair):", out)
    benchmark.extra_info["jain"] = out
    assert out["lcu"] > 0.95
    assert out["mcs"] > 0.95
    # model B's hierarchical coherence favours same-chip handoffs for
    # coherence-based locks (the paper's "unfair lock transfer between
    # threads in the same chip"); the LCU must beat TATAS
    assert out["lcu"] >= out["tatas"]


def test_overtake_ledger_separates_fair_from_unfair(benchmark):
    """The worst single-waiter overtake count: the LCU's queue bounds
    it near the network-arrival skew; the SSB's retry race does not."""

    def run():
        out = {}
        for lock in ("lcu", "ssb"):
            summary, _ = _fairness_cell(
                model_a(), lock, threads=16, write_pct=25,
                fixed_roles=True, duration=150_000,
                cs_cycles=60, think_cycles=5,
            )
            out[lock] = summary["overtakes"]["max"]
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nworst single-waiter overtake count:", out)
    benchmark.extra_info["max_overtake"] = out
    assert out["ssb"] > 4 * max(out["lcu"], 1)


def test_writer_starvation_under_reader_flood(benchmark):
    """4 writers vs 12 readers, continuous load: the writers' share of
    grants, read from the observatory (which also proves the p999
    writer wait blows up on the unfair lock)."""

    def run():
        out = {}
        for lock in ("lcu", "ssb"):
            summary, report = _fairness_cell(
                model_a(), lock, threads=16, write_pct=25,
                fixed_roles=True, duration=200_000,
                cs_cycles=60, think_cycles=5,
            )
            out[lock] = {
                "writer_share": summary["writer_share"],
                "write_p999": summary["wait"]["write"]["p999"],
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nwriter share / p999 write wait (4 writers / 12 readers):",
          out)
    benchmark.extra_info["writer_share"] = {
        k: v["writer_share"] for k, v in out.items()
    }
    # queue fairness guarantees writers a real share; reader preference
    # (SSB) suppresses them
    assert out["lcu"]["writer_share"] > 1.5 * out["ssb"]["writer_share"]
    assert out["lcu"]["writer_share"] > 0.10
    # and the starved writers' tail wait shows it
    assert out["ssb"]["write_p999"] > out["lcu"]["write_p999"]
