"""Ablation: the Free Lock Table (paper Section IV-C, future work).

The paper identifies Radiosity's thread-private queue locks as the case
where the base LCU loses to software locks (no "implicit biasing"), and
sketches the FLT as the fix.  This bench quantifies it:

* base LCU: slower than pthread on Radiosity;
* LCU + FLT: re-acquisitions are free (zero messages), restoring the
  bias and closing the gap;
* the FLT must not hurt the contended Fluidanimate case.
"""

from repro.apps import run_app
from repro.params import model_a


def _radiosity(flt_entries, lock="lcu"):
    return run_app(
        model_a(flt_entries=flt_entries), "radiosity", lock,
        threads=16, seeds=(1, 2, 3),
    ).elapsed_mean


def test_flt_restores_radiosity_bias(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "pthread": run_app(model_a(), "radiosity", "pthread",
                               threads=16, seeds=(1, 2, 3)).elapsed_mean,
            "lcu": _radiosity(0),
            "lcu+flt": _radiosity(8),
        },
        rounds=1, iterations=1,
    )
    print()
    for k, v in results.items():
        print(f"radiosity {k:8s}: {v:9.0f} cycles")
    benchmark.extra_info.update(results)
    assert results["lcu"] > results["pthread"]          # the problem
    assert results["lcu+flt"] < 0.85 * results["lcu"]   # the fix
    assert results["lcu+flt"] < 1.10 * results["pthread"]


def test_flt_harmless_under_contention(benchmark):
    def run():
        base = run_app(model_a(), "fluidanimate", "lcu",
                       threads=32, seeds=(1, 2)).elapsed_mean
        flt = run_app(model_a(flt_entries=8), "fluidanimate", "lcu",
                      threads=32, seeds=(1, 2)).elapsed_mean
        return base, flt

    base, flt = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfluidanimate lcu: {base:.0f}, lcu+flt: {flt:.0f}")
    # shared locks: the FLT may add a small retrieval penalty, but must
    # not degrade the contended case materially
    assert flt < 1.25 * base
