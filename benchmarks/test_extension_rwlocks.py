"""Extension bench: reader-writer lock shootout across read ratios.

Compares the paper's MRSW baseline, the SNZI-based lock of Lev et al.
(paper reference [24]) and the LCU across reader proportions — the
design space the paper's related-work section walks through:

* MRSW: one shared reader counter — degrades as readers grow;
* SNZI: per-chip leaf counters decongest arrivals at the price of more
  memory accesses per operation (its Figure 1 row);
* LCU: hardware queue, direct grants — best of both.
"""

from repro.harness.microbench import run_microbench
from repro.params import model_b


def test_rwlock_reader_scaling(benchmark):
    WRITE_PCTS = (100, 10, 0)

    def run():
        out = {}
        for lock in ("mrsw", "snzi", "lcu"):
            series = []
            for write_pct in WRITE_PCTS:
                r = run_microbench(
                    model_b(), lock, threads=16, write_pct=write_pct,
                    iters_per_thread=60, cs_cycles=200,
                )
                series.append(round(r.cycles_per_cs, 1))
            out[lock] = series
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncycles/CS at write ratio {WRITE_PCTS}:")
    for lock, series in out.items():
        print(f"  {lock:5s}: {series}")
    benchmark.extra_info.update(out)

    mrsw, snzi, lcu = out["mrsw"], out["snzi"], out["lcu"]
    # MRSW's reader counter hotspot: pure-read is no cheaper than mutex
    assert mrsw[2] > 0.8 * mrsw[0]
    # SNZI beats MRSW for pure readers (its design goal)...
    assert snzi[2] < mrsw[2]
    # ...but pays for its writer gate when writers are mixed in
    # (every gate toggle forces reader re-arrivals)
    assert snzi[1] > snzi[2]
    # the LCU beats both at every ratio
    assert all(l < min(m, s) for l, m, s in zip(lcu, mrsw, snzi))
