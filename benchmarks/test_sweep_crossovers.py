"""Crossover analyses: where workload parameters flip the verdicts.

The paper reports point results; these benches chart the boundaries —
useful for judging when the LCU's hardware cost is worth paying.
"""

from repro.harness.sweeps import cs_length_sweep, contention_sweep
from repro.params import model_a


def test_cs_length_crossover(benchmark):
    """LCU vs MCS advantage as the critical section grows: the ~2.4x
    transfer advantage must amortize toward parity for long CSs."""
    r = benchmark.pedantic(
        lambda: cs_length_sweep(
            model_a, locks=("lcu", "mcs"),
            values=(20, 200, 2_000, 20_000),
            threads=16, iters_per_thread=40,
        ),
        rounds=1, iterations=1,
    )
    ratios = [round(x, 2) for x in r.ratio("mcs", "lcu")]
    print(f"\nmcs/lcu cycles ratio by CS length {r.values}: {ratios}")
    benchmark.extra_info["mcs_over_lcu"] = ratios
    assert ratios[0] > 1.8            # short CS: big LCU win
    assert ratios[-1] < 1.15          # long CS: amortized away
    assert sorted(ratios, reverse=True) == ratios  # monotone decay


def test_contention_collapse_boundary(benchmark):
    """TATAS vs LCU as contenders grow in Model A: the single-line lock
    must degrade super-linearly while the LCU holds flat."""
    r = benchmark.pedantic(
        lambda: contention_sweep(
            model_a, locks=("lcu", "tatas"),
            values=(2, 8, 32), iters_per_thread=50,
        ),
        rounds=1, iterations=1,
    )
    print(f"\ncycles/CS by threads {r.values}:")
    for lock, vals in r.series.items():
        print(f"  {lock:6s}: {[round(v,1) for v in vals]}")
    lcu = r.series["lcu"]
    tatas = r.series["tatas"]
    benchmark.extra_info.update(
        {"lcu": [round(v, 1) for v in lcu],
         "tatas": [round(v, 1) for v in tatas]}
    )
    assert lcu[-1] < 1.5 * lcu[0]
    assert tatas[-1] > 2.0 * tatas[0]
