"""Benchmark suite configuration.

Each benchmark regenerates one table/figure of the paper at a reduced
default scale (see EXPERIMENTS.md for paper-scale instructions), prints
the resulting series, asserts the figure's shape checks, and records key
simulated metrics in the pytest-benchmark ``extra_info``.

The *host* time measured by pytest-benchmark is the simulator's own cost
to regenerate the figure — useful for tracking harness regressions; the
scientific output is the printed table and the extra_info metrics.
"""

import pytest


def emit(result) -> None:
    """Print a figure result prominently inside benchmark output."""
    print()
    print(result.text)
    if result.checks:
        print("shape checks:", result.checks)


def assert_checks(result) -> None:
    failed = [k for k, ok in result.checks.items() if not ok]
    assert not failed, f"{result.figure}: failed shape checks {failed}"
