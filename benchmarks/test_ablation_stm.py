"""STM ablations: contention-manager policy and irrevocability cost.

DESIGN.md calls out the STM's retry policy and the irrevocability token
as design choices; these benches quantify both.
"""

import random

from repro import Machine, OS, model_a
from repro.cpu import ops
from repro.stm.core import ObjectSTM


def _counter_storm(stm, machine, threads=8, incs=12):
    """High-conflict workload: everyone increments one counter."""
    counter = stm.alloc(0)
    os_ = OS(machine)

    def prog(thread):
        rng = random.Random(thread.tid)
        for _ in range(incs):
            def body(tx):
                v = yield from tx.read(counter)
                yield ops.Compute(25)
                yield from tx.write(counter, v + 1)

            yield from stm.run(thread, body)
            yield ops.Compute(rng.randint(1, 20))

    for _ in range(threads):
        os_.spawn(prog)
    elapsed = os_.run_all(max_cycles=5_000_000_000)
    assert counter.value == threads * incs
    return elapsed


def test_contention_manager_policies(benchmark):
    def run():
        out = {}
        for policy in ("none", "linear", "exponential"):
            machine = Machine(model_a())
            stm = ObjectSTM(machine, "lcu", backoff=policy)
            elapsed = _counter_storm(stm, machine)
            out[policy] = {
                "cycles": elapsed,
                "abort_rate": round(stm.stats.abort_rate, 3),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for policy, d in out.items():
        print(f"  {policy:12s}: {d['cycles']:8d} cycles, "
              f"abort rate {d['abort_rate']:.1%}")
    benchmark.extra_info.update(
        {k: v["cycles"] for k, v in out.items()}
    )
    # backing off must cut the abort rate versus immediate retry
    assert out["exponential"]["abort_rate"] < out["none"]["abort_rate"]


def test_irrevocability_token_cost(benchmark):
    """The read-mode token every regular commit takes when irrevocable
    support is enabled must cost little when no irrevocable transaction
    runs (read sharing keeps it cheap)."""
    def run():
        out = {}
        for support in (False, True):
            machine = Machine(model_a())
            stm = ObjectSTM(machine, "lcu", irrevocable_support=support)
            out["with_token" if support else "baseline"] = _counter_storm(
                stm, machine, threads=6
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nirrevocability token overhead: {out}")
    benchmark.extra_info.update(out)
    assert out["with_token"] < 1.6 * out["baseline"], out
