"""Figure 13: application execution time (model A).

Expected shapes (paper Section IV-C):
* Fluidanimate (32 threads, fine-grain cell locks): LCU beats the Posix
  mutex (paper: +7.4%) and edges the SSB via direct transfers;
* Cholesky (16 threads, compute-bound tasks): all models within noise;
* Radiosity (16 threads, thread-private queues): software wins —
  coherence gives it "implicit biasing" that the base LCU lacks;
* geometric mean: small net LCU win (paper: +1.98%).
"""

from conftest import assert_checks, emit

from repro.harness import figure13
from repro.harness.reporting import geomean


def test_fig13_applications(benchmark):
    r = benchmark.pedantic(
        figure13,
        kwargs=dict(seeds=(1, 2, 3)),
        rounds=1, iterations=1,
    )
    emit(r)
    assert_checks(r)
    apps = r.xs
    speedup = {
        a: r.series["pthread"][i] / r.series["lcu"][i]
        for i, a in enumerate(apps)
    }
    benchmark.extra_info["lcu_speedup_vs_pthread"] = speedup
    gm = geomean(speedup.values())
    benchmark.extra_info["geomean"] = gm
    print(f"LCU geomean speedup vs pthread: {gm:.3f}")
    # fluidanimate: clear LCU win; radiosity: clear software win
    assert speedup["fluidanimate"] > 1.03
    assert speedup["radiosity"] < 0.97
